//! Runtime-prediction baselines compared in the paper's Fig. 11(b):
//! user estimates, plain SVM, RandomForest, Last-2 (Tsafrir et al.),
//! IRPA (Wu et al. — RF + SVR + Bayesian-ridge ensemble), TRIP (Fan et
//! al. — Tobit regression on censored runtimes), and PREP (Zhou et al. —
//! per-running-path clusters).
//!
//! All baselines share the [`RuntimePredictor`] interface: they observe
//! *completed* jobs and predict runtimes for newly submitted ones, with
//! periodic retraining like the ESlurm framework itself.

use crate::features::{features, target, untarget};
use crate::framework::{EstimatorConfig, RuntimeEstimator};
use ml::{BayesianRidge, CensoredSample, RandomForest, Regressor, StandardScaler, Svr, Tobit};
use simclock::{SimSpan, SimTime};
use std::collections::{HashMap, VecDeque};
use workload::Job;

/// A source of job-runtime predictions, evaluated by chronological replay.
pub trait RuntimePredictor: Send {
    /// Display name (used in reports).
    fn name(&self) -> String;
    /// A job completed; learn from it.
    fn observe(&mut self, job: &Job);
    /// Retrain if a period elapsed (no-op for stateless predictors).
    fn maybe_retrain(&mut self, _now: SimTime) {}
    /// Predict the runtime of a newly submitted job (`None` = abstain).
    fn predict(&mut self, job: &Job) -> Option<SimSpan>;
}

/// The user's own walltime request.
#[derive(Default)]
pub struct UserEstimate;

impl RuntimePredictor for UserEstimate {
    fn name(&self) -> String {
        "User".into()
    }
    fn observe(&mut self, _job: &Job) {}
    fn predict(&mut self, job: &Job) -> Option<SimSpan> {
        job.user_estimate
    }
}

/// Last-2 (Tsafrir et al.): the average of the actual runtimes of the last
/// two jobs submitted by the same user.
#[derive(Default)]
pub struct Last2 {
    recent: HashMap<u32, VecDeque<f64>>,
}

impl RuntimePredictor for Last2 {
    fn name(&self) -> String {
        "Last-2".into()
    }
    fn observe(&mut self, job: &Job) {
        let q = self.recent.entry(job.user.0).or_default();
        q.push_back(job.actual_runtime.as_secs_f64());
        if q.len() > 2 {
            q.pop_front();
        }
    }
    fn predict(&mut self, job: &Job) -> Option<SimSpan> {
        let q = self.recent.get(&job.user.0)?;
        if q.is_empty() {
            return None;
        }
        Some(SimSpan::from_secs_f64(
            q.iter().sum::<f64>() / q.len() as f64,
        ))
    }
}

/// A sliding-window model over any [`Regressor`]: features are scaled, the
/// target is log-runtime, retraining is periodic. `SVM` and
/// `RandomForest` in Fig. 11(b) are instances of this.
pub struct WindowModel<R: Regressor> {
    label: String,
    window: usize,
    retrain_every: SimSpan,
    history: VecDeque<(Vec<f64>, f64)>,
    scaler: StandardScaler,
    model: R,
    fitted: bool,
    last_train: Option<SimTime>,
}

impl<R: Regressor> WindowModel<R> {
    /// Wrap `model` with a `window`-job sliding window.
    pub fn new(label: impl Into<String>, model: R, window: usize) -> Self {
        WindowModel {
            label: label.into(),
            window,
            retrain_every: SimSpan::from_hours(15),
            history: VecDeque::new(),
            scaler: StandardScaler::default(),
            model,
            fitted: false,
            last_train: None,
        }
    }

    fn retrain(&mut self, now: SimTime) {
        if self.history.len() < 10 {
            return;
        }
        let _mem = obs::tag_scope(obs::MemTag::Ml);
        let raw: Vec<Vec<f64>> = self.history.iter().map(|(f, _)| f.clone()).collect();
        self.scaler = StandardScaler::fit(&raw);
        let x = self.scaler.transform_all(&raw);
        let y: Vec<f64> = self.history.iter().map(|(_, t)| *t).collect();
        self.model.fit(&x, &y);
        self.fitted = true;
        self.last_train = Some(now);
    }
}

impl<R: Regressor> RuntimePredictor for WindowModel<R> {
    fn name(&self) -> String {
        self.label.clone()
    }
    fn observe(&mut self, job: &Job) {
        self.history.push_back((features(job), target(job)));
        while self.history.len() > self.window {
            self.history.pop_front();
        }
    }
    fn maybe_retrain(&mut self, now: SimTime) {
        let due = match self.last_train {
            None => self.history.len() >= 30,
            Some(t) => now.since(t) >= self.retrain_every,
        };
        if due {
            self.retrain(now);
        }
    }
    fn predict(&mut self, job: &Job) -> Option<SimSpan> {
        if !self.fitted {
            return None;
        }
        let f = self.scaler.transform(&features(job));
        Some(SimSpan::from_secs_f64(untarget(self.model.predict(&f))))
    }
}

/// The plain (unclustered) SVM baseline — also the "no clustering"
/// ablation of the ESlurm framework.
pub fn svm_baseline(window: usize) -> WindowModel<Svr> {
    // The hashed name feature needs a local kernel to be useful at all.
    WindowModel::new(
        "SVM",
        Svr::default_rbf().with_kernel(ml::Kernel::Rbf { gamma: 2.0 }),
        window,
    )
}

/// The RandomForest baseline.
pub fn forest_baseline(window: usize, seed: u64) -> WindowModel<RandomForest> {
    WindowModel::new("RandomForest", RandomForest::new(40, 10, seed), window)
}

/// IRPA (Wu et al.): an ensemble of random-forest, SVR, and Bayesian-ridge
/// regressors; predictions are averaged in log space.
pub struct Irpa {
    forest: WindowModel<RandomForest>,
    svr: WindowModel<Svr>,
    ridge: WindowModel<BayesianRidge>,
}

impl Irpa {
    /// Standard configuration.
    pub fn new(window: usize, seed: u64) -> Self {
        Irpa {
            forest: WindowModel::new("irpa-rf", RandomForest::new(40, 10, seed), window),
            svr: WindowModel::new(
                "irpa-svr",
                Svr::default_rbf().with_kernel(ml::Kernel::Rbf { gamma: 2.0 }),
                window,
            ),
            ridge: WindowModel::new("irpa-br", BayesianRidge::new(), window),
        }
    }
}

impl RuntimePredictor for Irpa {
    fn name(&self) -> String {
        "IRPA".into()
    }
    fn observe(&mut self, job: &Job) {
        self.forest.observe(job);
        self.svr.observe(job);
        self.ridge.observe(job);
    }
    fn maybe_retrain(&mut self, now: SimTime) {
        self.forest.maybe_retrain(now);
        self.svr.maybe_retrain(now);
        self.ridge.maybe_retrain(now);
    }
    fn predict(&mut self, job: &Job) -> Option<SimSpan> {
        let preds: Vec<f64> = [
            self.forest.predict(job),
            self.svr.predict(job),
            self.ridge.predict(job),
        ]
        .into_iter()
        .flatten()
        .map(|s| s.as_secs_f64().max(1.0).ln())
        .collect();
        if preds.is_empty() {
            return None;
        }
        let mean_log = preds.iter().sum::<f64>() / preds.len() as f64;
        Some(SimSpan::from_secs_f64(untarget(mean_log)))
    }
}

/// TRIP (Fan et al.): Tobit regression exploiting the right-censoring of
/// runtimes at the requested walltime.
pub struct Trip {
    window: usize,
    retrain_every: SimSpan,
    history: VecDeque<CensoredSample>,
    raw: VecDeque<Vec<f64>>,
    scaler: StandardScaler,
    model: Tobit,
    fitted: bool,
    last_train: Option<SimTime>,
}

impl Trip {
    /// Standard configuration.
    pub fn new(window: usize) -> Self {
        Trip {
            window,
            retrain_every: SimSpan::from_hours(15),
            history: VecDeque::new(),
            raw: VecDeque::new(),
            scaler: StandardScaler::default(),
            model: Tobit::new(),
            fitted: false,
            last_train: None,
        }
    }
}

impl RuntimePredictor for Trip {
    fn name(&self) -> String {
        "TRIP".into()
    }
    fn observe(&mut self, job: &Job) {
        // A job that ran into its walltime limit is censored: we only know
        // the runtime was at least the limit.
        let censored = job
            .user_estimate
            .map(|u| job.actual_runtime >= u)
            .unwrap_or(false);
        self.raw.push_back(features(job));
        self.history.push_back(CensoredSample {
            x: Vec::new(), // filled at retrain time, post scaling
            y: target(job),
            censored,
        });
        while self.history.len() > self.window {
            self.history.pop_front();
            self.raw.pop_front();
        }
    }
    fn maybe_retrain(&mut self, now: SimTime) {
        let due = match self.last_train {
            None => self.history.len() >= 30,
            Some(t) => now.since(t) >= self.retrain_every,
        };
        if !due || self.history.len() < 10 {
            return;
        }
        let raw: Vec<Vec<f64>> = self.raw.iter().cloned().collect();
        self.scaler = StandardScaler::fit(&raw);
        let data: Vec<CensoredSample> = self
            .history
            .iter()
            .zip(&raw)
            .map(|(s, r)| CensoredSample {
                x: self.scaler.transform(r),
                y: s.y,
                censored: s.censored,
            })
            .collect();
        self.model.fit_censored(&data);
        self.fitted = true;
        self.last_train = Some(now);
    }
    fn predict(&mut self, job: &Job) -> Option<SimSpan> {
        if !self.fitted {
            return None;
        }
        let f = self.scaler.transform(&features(job));
        Some(SimSpan::from_secs_f64(untarget(self.model.predict(&f))))
    }
}

/// PREP (Zhou et al.): jobs are grouped by their running path — here the
/// job name stands in for the script path — and each group gets its own
/// predictor (recency-weighted mean of the group's log-runtimes), with a
/// global forest as fallback for unseen paths.
pub struct Prep {
    per_path: HashMap<String, VecDeque<f64>>,
    keep: usize,
    fallback: WindowModel<RandomForest>,
}

impl Prep {
    /// Standard configuration.
    pub fn new(window: usize, seed: u64) -> Self {
        Prep {
            per_path: HashMap::new(),
            keep: 16,
            fallback: WindowModel::new("prep-fallback", RandomForest::new(30, 10, seed), window),
        }
    }
}

impl RuntimePredictor for Prep {
    fn name(&self) -> String {
        "PREP".into()
    }
    fn observe(&mut self, job: &Job) {
        let q = self.per_path.entry(job.name.clone()).or_default();
        q.push_back(target(job));
        if q.len() > self.keep {
            q.pop_front();
        }
        self.fallback.observe(job);
    }
    fn maybe_retrain(&mut self, now: SimTime) {
        self.fallback.maybe_retrain(now);
    }
    fn predict(&mut self, job: &Job) -> Option<SimSpan> {
        if let Some(q) = self.per_path.get(&job.name) {
            if !q.is_empty() {
                // Recency-weighted mean of the path's log-runtimes.
                let mut wsum = 0.0;
                let mut sum = 0.0;
                for (i, v) in q.iter().enumerate() {
                    let w = (i + 1) as f64;
                    wsum += w;
                    sum += w * v;
                }
                return Some(SimSpan::from_secs_f64(untarget(sum / wsum)));
            }
        }
        self.fallback.predict(job)
    }
}

/// The full ESlurm framework behind the common interface (for Fig. 11(b)
/// and the Table VIII slack sweep).
///
/// By default the predictor reports the framework's *model* estimates —
/// Fig. 11(b) is a model comparison. Construct with [`EslurmPredictor::gated`]
/// to reproduce the deployed behaviour, where the AEA gate may route a job
/// back to its user estimate (that is what the scheduler consumes).
pub struct EslurmPredictor {
    inner: RuntimeEstimator,
    gated: bool,
}

impl EslurmPredictor {
    /// Model-comparison mode: always answer with the model estimate.
    pub fn new(config: EstimatorConfig) -> Self {
        EslurmPredictor {
            inner: RuntimeEstimator::new(config),
            gated: false,
        }
    }

    /// Deployment mode: apply the AEA gate against user estimates.
    pub fn gated(config: EstimatorConfig) -> Self {
        EslurmPredictor {
            inner: RuntimeEstimator::new(config),
            gated: true,
        }
    }

    /// Access the wrapped framework.
    pub fn framework(&self) -> &RuntimeEstimator {
        &self.inner
    }
}

impl RuntimePredictor for EslurmPredictor {
    fn name(&self) -> String {
        "ESlurm".into()
    }
    fn observe(&mut self, job: &Job) {
        self.inner.record_completion(job);
    }
    fn maybe_retrain(&mut self, now: SimTime) {
        self.inner.maybe_retrain(now);
    }
    fn predict(&mut self, job: &Job) -> Option<SimSpan> {
        if self.gated {
            self.inner.estimate(job).map(|e| e.runtime)
        } else {
            self.inner
                .model_estimate(job)
                .map(|(s, _, _)| s)
                .or(job.user_estimate)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simclock::SimTime;
    use workload::{JobId, TraceConfig, UserId};

    fn job(user: u32, runtime_s: u64, est_s: Option<u64>) -> Job {
        Job {
            id: JobId(0),
            name: "t".into(),
            user: UserId(user),
            nodes: 2,
            cores_per_node: 4,
            submit: SimTime::from_secs(100),
            user_estimate: est_s.map(SimSpan::from_secs),
            actual_runtime: SimSpan::from_secs(runtime_s),
        }
    }

    #[test]
    fn user_estimate_passthrough() {
        let mut p = UserEstimate;
        assert_eq!(
            p.predict(&job(1, 100, Some(300))),
            Some(SimSpan::from_secs(300))
        );
        assert_eq!(p.predict(&job(1, 100, None)), None);
    }

    #[test]
    fn last2_averages_last_two() {
        let mut p = Last2::default();
        assert_eq!(p.predict(&job(1, 0, None)), None);
        p.observe(&job(1, 100, None));
        p.observe(&job(1, 300, None));
        p.observe(&job(1, 500, None)); // 100 rolls out
        let pred = p.predict(&job(1, 0, None)).unwrap();
        assert_eq!(pred, SimSpan::from_secs(400));
        // Per-user separation.
        assert_eq!(p.predict(&job(2, 0, None)), None);
    }

    #[test]
    fn window_model_learns_trace() {
        let jobs = TraceConfig::small(600, 7).generate();
        let mut p = svm_baseline(400);
        for j in &jobs[..500] {
            p.observe(j);
        }
        p.maybe_retrain(SimTime::from_secs(1));
        let mut ea = 0.0;
        for j in &jobs[500..] {
            let pred = p.predict(j).unwrap().as_secs_f64();
            ea += crate::framework::estimation_accuracy(pred, j.actual_runtime.as_secs_f64());
        }
        ea /= 100.0;
        assert!(ea > 0.35, "SVM window EA {ea:.3}");
    }

    #[test]
    fn prep_uses_per_path_memory() {
        let mut p = Prep::new(100, 1);
        for _ in 0..5 {
            p.observe(&job(1, 1000, None));
        }
        let pred = p.predict(&job(1, 0, None)).unwrap().as_secs_f64();
        assert!((pred - 1000.0).abs() < 50.0, "pred {pred}");
    }

    #[test]
    fn trip_marks_censored_jobs() {
        let mut p = Trip::new(100);
        // Runtime hits the limit -> censored observation recorded.
        p.observe(&job(1, 300, Some(300)));
        p.observe(&job(1, 100, Some(300)));
        assert_eq!(p.history.len(), 2);
        assert!(p.history[0].censored);
        assert!(!p.history[1].censored);
    }

    #[test]
    fn irpa_combines_members() {
        let jobs = TraceConfig::small(500, 9).generate();
        let mut p = Irpa::new(300, 5);
        for j in &jobs[..400] {
            p.observe(j);
        }
        p.maybe_retrain(SimTime::from_secs(1));
        assert!(p.predict(&jobs[450]).is_some());
    }
}
