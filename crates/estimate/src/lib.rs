//! # eslurm-estimate
//!
//! The ESlurm job-runtime-estimation framework (paper §V) and every
//! baseline it is compared against:
//!
//! * [`features`] — the Table IV feature extraction (name, user, nodes,
//!   cores, submission hour) with a log-runtime target;
//! * [`framework`] — model generator (K-means++ + per-cluster SVR),
//!   real-time estimation module (slack α, AEA gate vs. user estimates),
//!   record module (Eqs. 4–5);
//! * [`baselines`] — User, Last-2, SVM, RandomForest, IRPA, TRIP, PREP
//!   behind a common [`baselines::RuntimePredictor`] interface;
//! * [`eval`] — chronological replay scoring (accuracy and
//!   underestimation rate, Fig. 11(b) / Table VIII).

pub mod baselines;
pub mod eval;
pub mod features;
pub mod framework;

pub use baselines::{
    forest_baseline, svm_baseline, EslurmPredictor, Irpa, Last2, Prep, RuntimePredictor, Trip,
    UserEstimate,
};
pub use eval::{evaluate, signed_error_percentiles, ModelReport};
pub use framework::{
    estimation_accuracy, ClusterDiag, Estimate, EstimateSource, EstimatorConfig, RuntimeEstimator,
};
