//! The real-thread transport: every node runs its actor on an OS thread,
//! exchanging messages over crossbeam channels.
//!
//! This transport exists to validate that the protocol logic driving the
//! large-scale DES experiments is genuinely concurrent-safe and
//! transport-independent: integration tests run the same master/satellite/
//! slave actors here at small scale and check they reach the same protocol
//! outcomes. Unlike the DES, wall-clock timing is real (channel latency is
//! sub-microsecond), so tests assert on protocol results, not on durations.

use crate::actor::{Actor, Context, Payload};
use crate::fault::FaultPlan;
use crate::meter::Meter;
use crate::node::NodeId;
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use obs::{CausalRecord, Counter, EventKind, FlowKind, Hist, HopSend, Recorder, TraceContext};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use simclock::rng::stream_rng;
use simclock::{SimSpan, SimTime};
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

enum Ctl<M> {
    Msg {
        from: NodeId,
        msg: M,
        /// Causal-trace envelope (see the DES transport): present only
        /// when the sender had a current trace and causal tracing is on.
        /// The thread transport cannot split sender queueing from wire
        /// time, so `queue_us` is 0 and the whole gap lands in `link_us`.
        hop: Option<HopSend>,
    },
    Stop,
}

struct Shared {
    meters: Vec<Mutex<Meter>>,
    up: Vec<AtomicBool>,
    start: Instant,
    /// Observability sink; events are stamped with wall time since `start`
    /// (the same µs timeline `now()` reports).
    obs: Recorder,
}

impl Shared {
    fn now(&self) -> SimTime {
        SimTime(self.start.elapsed().as_micros() as u64)
    }
}

/// Timer entry in a node's local heap (min-heap by deadline).
struct TimerEntry {
    deadline: Instant,
    token: u64,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.token == other.token
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.deadline.cmp(&self.deadline) // reversed: min-heap
    }
}

struct ThreadCtx<'a, M> {
    shared: &'a Shared,
    senders: &'a [Sender<Ctl<M>>],
    me: NodeId,
    timers: &'a mut BinaryHeap<TimerEntry>,
    socket_closes: &'a mut Vec<(Instant, NodeId)>,
    rng: &'a mut StdRng,
    /// The causal context current for the running handler (owned by the
    /// node loop so timer handlers see what message handlers installed).
    cur_ctx: &'a mut Option<TraceContext>,
}

impl<M: Payload> Context<M> for ThreadCtx<'_, M> {
    fn now(&self) -> SimTime {
        self.shared.now()
    }

    fn me(&self) -> NodeId {
        self.me
    }

    fn send(&mut self, to: NodeId, msg: M) {
        self.shared.meters[self.me.index()].lock().count_sent();
        self.shared.obs.inc(Counter::MsgsSent);
        if self.shared.obs.events_enabled() {
            self.shared.obs.event_at(
                self.shared.now(),
                self.me.0,
                EventKind::MsgSend,
                to.0 as u64,
                msg.size_bytes() as u64,
            );
        }
        let hop = self.cur_ctx.and_then(|ctx| {
            self.shared.obs.causal_child(ctx).map(|child| HopSend {
                ctx: child,
                parent: ctx.span,
                send_us: self.shared.now().as_micros(),
                queue_us: 0,
            })
        });
        // A send to a stopped node's closed channel is a drop, like a send
        // to a failed node.
        let _ = self.senders[to.index()].send(Ctl::Msg {
            from: self.me,
            msg,
            hop,
        });
    }

    fn set_timer(&mut self, after: SimSpan, token: u64) {
        self.timers.push(TimerEntry {
            deadline: Instant::now() + Duration::from_micros(after.as_micros()),
            token,
        });
    }

    fn charge_cpu(&mut self, span: SimSpan) {
        self.shared.meters[self.me.index()].lock().charge_cpu(span);
    }

    fn alloc_virt(&mut self, delta: i64) {
        self.shared.meters[self.me.index()].lock().alloc_virt(delta);
    }

    fn alloc_real(&mut self, delta: i64) {
        self.shared.meters[self.me.index()].lock().alloc_real(delta);
    }

    fn open_socket(&mut self, peer: NodeId) {
        self.shared.meters[self.me.index()].lock().open_socket();
        self.shared.meters[peer.index()].lock().open_socket();
    }

    fn close_socket(&mut self, peer: NodeId) {
        self.shared.meters[self.me.index()].lock().close_socket();
        self.shared.meters[peer.index()].lock().close_socket();
    }

    fn open_socket_for(&mut self, peer: NodeId, dur: SimSpan) {
        self.open_socket(peer);
        self.socket_closes.push((
            Instant::now() + Duration::from_micros(dur.as_micros()),
            peer,
        ));
    }

    fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    fn is_up(&self, node: NodeId) -> bool {
        self.shared.up[node.index()].load(Ordering::Acquire)
    }

    fn trace_begin(&mut self, flow: FlowKind) -> Option<TraceContext> {
        let ctx = self
            .shared
            .obs
            .causal_begin(flow, self.me.0, self.shared.now().as_micros());
        if ctx.is_some() {
            *self.cur_ctx = ctx;
        }
        ctx
    }

    fn trace_current(&self) -> Option<TraceContext> {
        *self.cur_ctx
    }

    fn trace_adopt(&mut self, ctx: Option<TraceContext>) {
        if self.shared.obs.causal_enabled() {
            *self.cur_ctx = ctx;
        }
    }

    fn trace_backoff(&mut self, ctx: &TraceContext, start: SimTime) {
        self.shared.obs.causal_backoff(
            ctx,
            self.me.0,
            start.as_micros(),
            self.shared.now().as_micros(),
        );
    }
}

/// A running cluster of actor threads.
pub struct ThreadCluster<M: Payload, A: Actor<M> + 'static> {
    shared: Arc<Shared>,
    senders: Vec<Sender<Ctl<M>>>,
    handles: Vec<JoinHandle<A>>,
    fault_stop: Option<Sender<()>>,
    fault_handle: Option<JoinHandle<()>>,
}

impl<M: Payload, A: Actor<M> + 'static> ThreadCluster<M, A> {
    /// Spawn one thread per actor; node `i` runs `actors[i]`.
    pub fn start(actors: Vec<A>, seed: u64) -> Self {
        Self::start_with_obs(actors, seed, Recorder::disabled())
    }

    /// Like [`ThreadCluster::start`], but recording into `obs`. Events are
    /// stamped with wall time since cluster start (µs), so the same trace
    /// tooling works for both transports.
    pub fn start_with_obs(actors: Vec<A>, seed: u64, obs: Recorder) -> Self {
        let n = actors.len();
        let shared = Arc::new(Shared {
            meters: (0..n).map(|_| Mutex::new(Meter::new())).collect(),
            up: (0..n).map(|_| AtomicBool::new(true)).collect(),
            start: Instant::now(),
            obs,
        });
        let (senders, receivers): (Vec<_>, Vec<_>) =
            (0..n).map(|_| channel::unbounded::<Ctl<M>>()).unzip();

        let handles = actors
            .into_iter()
            .enumerate()
            .map(|(i, actor)| {
                let shared = Arc::clone(&shared);
                let senders = senders.clone();
                let rx = receivers[i].clone();
                std::thread::Builder::new()
                    .name(format!("emu-node-{i}"))
                    .spawn(move || node_loop(NodeId(i as u32), actor, shared, senders, rx, seed))
                    .expect("spawn emu node thread")
            })
            .collect();

        ThreadCluster {
            shared,
            senders,
            handles,
            fault_stop: None,
            fault_handle: None,
        }
    }

    /// Apply `plan` automatically: a background thread flips each node's
    /// up/down flag at the plan's (virtual-second = real-second) instants.
    /// Call right after `start`; outages already in the past are applied
    /// immediately.
    pub fn apply_fault_plan(&mut self, plan: FaultPlan) {
        let shared = Arc::clone(&self.shared);
        let (tx, rx) = channel::bounded::<()>(1);
        let handle = std::thread::Builder::new()
            .name("emu-fault-injector".into())
            .spawn(move || {
                // Collect (real deadline, node, up?) transitions.
                let mut transitions: Vec<(Duration, usize, bool)> = Vec::new();
                for o in plan.outages() {
                    transitions.push((
                        Duration::from_micros(o.down_at.as_micros()),
                        o.node.index(),
                        false,
                    ));
                    transitions.push((
                        Duration::from_micros(o.up_at.as_micros()),
                        o.node.index(),
                        true,
                    ));
                }
                transitions.sort_by_key(|t| t.0);
                for (after, node, up) in transitions {
                    let elapsed = shared.start.elapsed();
                    if after > elapsed {
                        match rx.recv_timeout(after - elapsed) {
                            Err(RecvTimeoutError::Timeout) => {}
                            _ => return, // shutdown requested
                        }
                    }
                    shared.up[node].store(up, Ordering::Release);
                    let (c, k) = if up {
                        (Counter::NodeUps, EventKind::NodeUp)
                    } else {
                        (Counter::NodeDowns, EventKind::NodeDown)
                    };
                    shared.obs.inc(c);
                    shared.obs.event_at(shared.now(), node as u32, k, 0, 0);
                }
                // Park until shutdown so the channel stays open.
                let _ = rx.recv();
            })
            .expect("spawn fault injector");
        self.fault_stop = Some(tx);
        self.fault_handle = Some(handle);
    }

    /// Send a message into the cluster from outside (e.g. a simulated user).
    pub fn inject(&self, from: NodeId, to: NodeId, msg: M) {
        let _ = self.senders[to.index()].send(Ctl::Msg {
            from,
            msg,
            hop: None,
        });
    }

    /// Mark a node up or down. Down nodes drop incoming messages and defer
    /// timers, emulating a crashed daemon.
    pub fn set_up(&self, node: NodeId, up: bool) {
        self.shared.up[node.index()].store(up, Ordering::Release);
    }

    /// Snapshot a node's meter.
    pub fn meter(&self, node: NodeId) -> Meter {
        self.shared.meters[node.index()].lock().clone()
    }

    /// Elapsed cluster time.
    pub fn now(&self) -> SimTime {
        self.shared.now()
    }

    /// The observability recorder this cluster records into.
    pub fn obs(&self) -> &Recorder {
        &self.shared.obs
    }

    /// Stop all nodes and return their final actor states with meters.
    pub fn shutdown(mut self) -> Vec<(A, Meter)> {
        if let Some(stop) = self.fault_stop.take() {
            drop(stop); // closes the channel; injector exits
        }
        if let Some(h) = self.fault_handle.take() {
            let _ = h.join();
        }
        for s in &self.senders {
            let _ = s.send(Ctl::Stop);
        }
        self.handles
            .into_iter()
            .enumerate()
            .map(|(i, h)| {
                let actor = h.join().expect("emu node thread panicked");
                let meter = self.shared.meters[i].lock().clone();
                (actor, meter)
            })
            .collect()
    }
}

fn node_loop<M: Payload, A: Actor<M>>(
    me: NodeId,
    mut actor: A,
    shared: Arc<Shared>,
    senders: Vec<Sender<Ctl<M>>>,
    rx: Receiver<Ctl<M>>,
    seed: u64,
) -> A {
    let mut timers: BinaryHeap<TimerEntry> = BinaryHeap::new();
    // Scratch buffer for draining due timers: reused across ticks so the
    // hot loop stays allocation-free once it reaches steady state.
    let mut due: Vec<TimerEntry> = Vec::new();
    let mut socket_closes: Vec<(Instant, NodeId)> = Vec::new();
    let mut rng = stream_rng(seed, me.0 as u64);
    let mut cur_ctx: Option<TraceContext> = None;

    {
        let mut ctx = ThreadCtx {
            shared: &shared,
            senders: &senders,
            me,
            timers: &mut timers,
            socket_closes: &mut socket_closes,
            rng: &mut rng,
            cur_ctx: &mut cur_ctx,
        };
        actor.on_start(&mut ctx);
    }
    cur_ctx = None;

    loop {
        // Auto-close expired ephemeral sockets.
        let now = Instant::now();
        socket_closes.retain(|(deadline, peer)| {
            if *deadline <= now {
                shared.meters[me.index()].lock().close_socket();
                shared.meters[peer.index()].lock().close_socket();
                false
            } else {
                true
            }
        });

        let up = shared.up[me.index()].load(Ordering::Acquire);

        // Fire due timers (only while up; a down daemon resumes later).
        // Each pass drains every already-due entry into the reusable
        // scratch buffer, then fires the batch through one context; timers
        // a handler arms with a zero delay fire on the next pass.
        if up {
            loop {
                let tick = Instant::now();
                while timers.peek().map(|t| t.deadline <= tick).unwrap_or(false) {
                    due.push(timers.pop().expect("peeked timer vanished"));
                }
                if due.is_empty() {
                    break;
                }
                let mut ctx = ThreadCtx {
                    shared: &shared,
                    senders: &senders,
                    me,
                    timers: &mut timers,
                    socket_closes: &mut socket_closes,
                    rng: &mut rng,
                    cur_ctx: &mut cur_ctx,
                };
                for t in due.drain(..) {
                    actor.on_timer(&mut ctx, t.token);
                    *ctx.cur_ctx = None;
                }
            }
        }

        // Wait for the next message, bounded by the next timer deadline.
        let wait = timers
            .peek()
            .map(|t| t.deadline.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(5))
            .min(Duration::from_millis(5));
        match rx.recv_timeout(wait) {
            Ok(Ctl::Stop) => return actor,
            Ok(Ctl::Msg { from, msg, hop }) => {
                if !shared.up[me.index()].load(Ordering::Acquire) {
                    shared.obs.inc(Counter::MsgsDropped);
                    shared
                        .obs
                        .event_at(shared.now(), me.0, EventKind::MsgDrop, from.0 as u64, 0);
                    continue; // down: drop the message
                }
                shared.meters[me.index()].lock().count_received();
                let tracing = shared.obs.events_enabled();
                let (size, t0) = if tracing {
                    let s = msg.size_bytes() as u64;
                    let t = shared.now();
                    shared
                        .obs
                        .event_at(t, me.0, EventKind::MsgRecv, from.0 as u64, s);
                    (s, t)
                } else {
                    (0, SimTime::ZERO)
                };
                cur_ctx = hop.map(|h| h.ctx);
                let mut ctx = ThreadCtx {
                    shared: &shared,
                    senders: &senders,
                    me,
                    timers: &mut timers,
                    socket_closes: &mut socket_closes,
                    rng: &mut rng,
                    cur_ctx: &mut cur_ctx,
                };
                actor.on_message(&mut ctx, from, msg);
                cur_ctx = None;
                if tracing {
                    let dur = shared.now().as_micros().saturating_sub(t0.as_micros());
                    shared.obs.observe(Hist::MsgProcessUs, dur);
                    shared.obs.span(
                        t0.as_micros(),
                        dur,
                        me.0,
                        EventKind::MsgProcess,
                        from.0 as u64,
                        size,
                    );
                    if let Some(h) = hop {
                        let recv_us = t0.as_micros();
                        shared.obs.causal_record(CausalRecord::Hop {
                            trace: h.ctx.trace,
                            span: h.ctx.span,
                            parent: h.parent,
                            flow: h.ctx.flow,
                            depth: h.ctx.depth,
                            from: from.0,
                            to: me.0,
                            send_us: h.send_us,
                            queue_us: h.queue_us,
                            link_us: recv_us.saturating_sub(h.send_us + h.queue_us),
                            recv_us,
                            process_us: dur,
                        });
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return actor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo {
        seen: Vec<u64>,
    }
    impl Actor<u64> for Echo {
        fn on_message(&mut self, ctx: &mut dyn Context<u64>, from: NodeId, msg: u64) {
            self.seen.push(msg);
            if msg > 0 {
                ctx.send(from, msg - 1);
            }
        }
    }

    #[test]
    fn threads_exchange_messages() {
        let cluster = ThreadCluster::start(vec![Echo { seen: vec![] }, Echo { seen: vec![] }], 7);
        cluster.inject(NodeId(0), NodeId(1), 6);
        std::thread::sleep(Duration::from_millis(100));
        let done = cluster.shutdown();
        assert_eq!(done[1].0.seen, vec![6, 4, 2, 0]);
        assert_eq!(done[0].0.seen, vec![5, 3, 1]);
        let (sent0, recv0) = done[0].1.msg_counts();
        assert_eq!(sent0, 3);
        assert_eq!(recv0, 3);
    }

    struct TickOnce {
        fired: bool,
    }
    impl Actor<u64> for TickOnce {
        fn on_start(&mut self, ctx: &mut dyn Context<u64>) {
            ctx.set_timer(SimSpan::from_millis(10), 42);
        }
        fn on_message(&mut self, _: &mut dyn Context<u64>, _: NodeId, _: u64) {}
        fn on_timer(&mut self, _: &mut dyn Context<u64>, token: u64) {
            assert_eq!(token, 42);
            self.fired = true;
        }
    }

    #[test]
    fn timers_fire_on_threads() {
        let cluster = ThreadCluster::start(vec![TickOnce { fired: false }], 7);
        std::thread::sleep(Duration::from_millis(80));
        let done = cluster.shutdown();
        assert!(done[0].0.fired);
    }

    #[test]
    fn fault_plan_toggles_liveness_automatically() {
        use crate::fault::{FaultPlan, Outage};
        let mut cluster =
            ThreadCluster::start(vec![Echo { seen: vec![] }, Echo { seen: vec![] }], 9);
        // Node 1 is down for the window [0ms, 150ms).
        cluster.apply_fault_plan(FaultPlan::from_outages(
            2,
            vec![Outage {
                node: NodeId(1),
                down_at: simclock::SimTime::ZERO,
                up_at: simclock::SimTime::from_millis(150),
            }],
        ));
        std::thread::sleep(Duration::from_millis(30));
        cluster.inject(NodeId(0), NodeId(1), 0); // dropped: node down
        std::thread::sleep(Duration::from_millis(220));
        cluster.inject(NodeId(0), NodeId(1), 0); // delivered: node back up
        std::thread::sleep(Duration::from_millis(60));
        let done = cluster.shutdown();
        assert_eq!(done[1].0.seen, vec![0], "exactly the post-recovery message");
    }

    #[test]
    fn down_node_drops_messages() {
        let cluster = ThreadCluster::start(vec![Echo { seen: vec![] }, Echo { seen: vec![] }], 7);
        cluster.set_up(NodeId(1), false);
        cluster.inject(NodeId(0), NodeId(1), 5);
        std::thread::sleep(Duration::from_millis(60));
        let done = cluster.shutdown();
        assert!(done[1].0.seen.is_empty());
    }
}
