//! The discrete-event transport: deterministic, fast, and scalable to the
//! million-node clusters the paper's FP-Tree argument targets.
//!
//! ## Sharded execution
//!
//! The event population is partitioned into `shards` independent
//! [`KeyedQueue`]s, each with its own struct-of-arrays node store
//! (`emu::state`) covering the nodes assigned to it. Every
//! event carries a canonical [`EventKey`] `(time, lane, seq)` stamped at
//! creation (lane = creator node + 1, or 0 for external injections and
//! fault markers; seq = the creator's own counter), which is identical no
//! matter how many shards exist — so sorting by key yields the *same*
//! total order in every mode, and `shards = 1` is a special case rather
//! than a preserved fork. Three execution strategies share that order:
//!
//! * **Serial / merged** (`shards == 1`, or full tracing on, or the link
//!   model offers no lookahead): repeatedly pop the globally minimal key
//!   across the shard queues and dispatch inline. This is exactly the
//!   serial engine; with tracing enabled it is the only mode, so the
//!   obs/causal exports are byte-identical by construction.
//! * **Parallel** (`shards > 1`, metrics-only or disabled recorder): one
//!   worker thread per shard, synchronized by conservative time windows of
//!   width [`LatencyModel::min_hop`] — no message can arrive within the
//!   window that sent it, so shards process their windows concurrently.
//!   Cross-shard deliveries travel through per-pair mailboxes and land in
//!   later windows; socket opens/closes (the one cross-shard *state*
//!   mutation) are deferred and applied sorted by `(key, sub)`, which
//!   replays the serial order exactly (windows partition time, so sorted
//!   per-window batches concatenate to the global sort). Outcomes —
//!   meters, drops, clock, event counts, metric snapshots — are
//!   bit-identical to the serial mode.
//!
//! Meter sampling is an engine-level tick (not a queued event), replayed
//! identically in every mode: ticks fire at multiples of the interval,
//! before any event at the same instant, and one final "kill tick" past
//! `until` retires the cadence (matching the retired event-based
//! scheduling, including its event count and clock effect).

use crate::actor::{Actor, Context, Payload};
use crate::fault::FaultPlan;
use crate::meter::{Meter, SampleSeries};
use crate::network::LatencyModel;
use crate::node::NodeId;
use crate::state::NodeStore;
use obs::engine::{EngineMode, EnginePhase, EngineSpan, ShardSlot};
use obs::{
    tag_scope, CausalRecord, Counter, EngineProfiler, EventKind, FlowKind, Hist, HopSend,
    MemProfiler, MemTag, Recorder, Sampler, SloEngine, TraceContext,
};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use simclock::{EventKey, KeyedQueue, SimSpan, SimTime};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Configuration of a simulated cluster.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Master seed; every node derives an independent RNG stream from it.
    pub seed: u64,
    /// Link model shared by all node pairs.
    pub latency: LatencyModel,
    /// Ground-truth outage schedule.
    pub faults: FaultPlan,
    /// Optional metering: `(interval, tracked nodes, stop time)`. Samples
    /// are recorded for the tracked nodes only — at 20K nodes a 1 Hz series
    /// for everyone would dwarf the experiment itself.
    pub sampling: Option<Sampling>,
    /// Observability sink. Disabled by default; when enabled the transport
    /// records message counters/latency histograms (and, in full-trace
    /// mode, send/recv/process spans plus fault-plan node up/down marks).
    pub obs: Recorder,
    /// Time-series sink. Disabled by default; when enabled, each meter
    /// sampling tick also records per-node `footprint_*{node=...}` series
    /// and snapshots the recorder's metrics into the sampler's store. When
    /// no explicit [`Sampling`] is configured, one is synthesized from the
    /// sampler's cadence over its named nodes (the sampler must then have
    /// an end time, or no ticks are scheduled).
    pub sampler: Sampler,
    /// Number of event-queue shards (clamped to `[1, nodes]`). `1` runs
    /// the classic serial loop; `> 1` runs one worker thread per shard
    /// when the recorder permits (metrics-only or disabled — full tracing
    /// falls back to a single-threaded merge that is still sharded but
    /// preserves export byte-identity trivially).
    pub shards: usize,
    /// Node → shard assignment (`partition[node] < shards`). `None`
    /// partitions nodes into contiguous balanced blocks. Correctness never
    /// depends on the partition — only locality does — because the
    /// synchronization window comes from the global link model.
    pub partition: Option<Vec<u32>>,
    /// Wall-clock engine profiler. Disabled by default; when enabled the
    /// engine attributes *real* time per shard (execution, barrier waits,
    /// mailbox drains, queue ops) and counts window efficiency. Strictly
    /// outside the virtual-time path: it writes only to its own atomics,
    /// so enabling it changes no outcome and no virtual-time export byte.
    pub engine: EngineProfiler,
    /// Online SLO engine. Disabled by default; when enabled it evaluates
    /// its specs on every sampling tick (it needs the sampling cadence to
    /// run — configure a [`Sampling`] or an end-bounded sampler). It reads
    /// the recorder and sampler and writes only its own state, so enabling
    /// it perturbs no outcome and no base export byte.
    pub slo: SloEngine,
    /// Host-memory profiler handle ([`obs::MemProfiler`]). Disabled by
    /// default, and inert unless the `mem-profile` feature compiled the
    /// tracking allocator in. When armed, each sampling tick also records
    /// per-tag `mem_host_*` series into the sampler's *host* store —
    /// never the default virtual-time store, so base exports stay
    /// byte-identical with profiling on or off.
    pub mem: MemProfiler,
}

/// Periodic meter sampling configuration.
#[derive(Clone, Debug)]
pub struct Sampling {
    /// Sampling period (the paper samples once per second).
    pub interval: SimSpan,
    /// Nodes whose meters are recorded.
    pub tracked: Vec<NodeId>,
    /// No samples are taken after this time.
    pub until: SimTime,
}

impl SimConfig {
    /// A default config for `n` fault-free nodes.
    pub fn new(n: usize, seed: u64) -> Self {
        SimConfig {
            seed,
            latency: LatencyModel::default(),
            faults: FaultPlan::none(n),
            sampling: None,
            obs: Recorder::disabled(),
            sampler: Sampler::disabled(),
            shards: 1,
            partition: None,
            engine: EngineProfiler::disabled(),
            slo: SloEngine::disabled(),
            mem: MemProfiler::disabled(),
        }
    }
}

enum Ev<M> {
    Deliver {
        from: NodeId,
        to: NodeId,
        msg: M,
        /// Causal-trace envelope: `Some` only while a trace is current on
        /// the sender *and* the recorder keeps causal records. Riding the
        /// envelope (not the payload) keeps modelled wire sizes — and so
        /// every latency draw and event time — identical with tracing on.
        hop: Option<HopSend>,
    },
    Timer {
        node: NodeId,
        token: u64,
    },
    SocketClose {
        a: NodeId,
        b: NodeId,
    },
    /// Fault-plan marker so the trace shows outages at their virtual time.
    /// Only queued when the recorder is enabled, so un-observed runs see
    /// an identical event stream.
    Fault {
        node: NodeId,
        up: bool,
    },
}

/// A deferred socket open/close, ordered by the key of the event that
/// issued it plus a within-handler sub-counter, so sorted application
/// replays the serial order exactly.
#[derive(Clone, Copy)]
struct SockOp {
    key: EventKey,
    sub: u16,
    node: NodeId,
    open: bool,
}

/// One shard: its event queue, the state of the nodes it owns, and its
/// share of the run counters.
struct Shard<M> {
    queue: KeyedQueue<Ev<M>>,
    nodes: NodeStore,
    /// Socket ops awaiting sorted application (parallel mode only).
    pending_socks: Vec<SockOp>,
    /// Time of the latest event this shard processed.
    last_time: SimTime,
    events: u64,
    drops: u64,
}

/// Cross-shard traffic for one (src, dst) pair within one window round.
struct MailBatch<M> {
    events: Vec<(EventKey, Ev<M>)>,
    socks: Vec<SockOp>,
}

impl<M> Default for MailBatch<M> {
    fn default() -> Self {
        MailBatch {
            events: Vec::new(),
            socks: Vec::new(),
        }
    }
}

/// State shared read-only by every shard during dispatch.
struct SimShared {
    latency: LatencyModel,
    faults: FaultPlan,
    obs: Recorder,
    /// `node → (shard, local index)`.
    map: Vec<(u32, u32)>,
    /// Conservative window width; see [`LatencyModel::min_hop`].
    lookahead: SimSpan,
    nshards: usize,
    /// Wall-clock profiler (disabled by default; never read by handlers).
    engine: EngineProfiler,
}

/// How a context reaches simulation state: the single-threaded modes hold
/// every shard; a parallel worker holds only its own plus mailboxes.
enum Access<'a, M> {
    Global(&'a mut [Shard<M>]),
    Local {
        shard: &'a mut Shard<M>,
        sid: u32,
        /// This worker's outbound row: `mail[dst]`.
        mail: &'a [Mutex<MailBatch<M>>],
    },
}

struct DesCtx<'a, M> {
    access: Access<'a, M>,
    shared: &'a SimShared,
    me: NodeId,
    now: SimTime,
    /// Key of the event whose handler is running (orders deferred ops).
    cur_key: EventKey,
    /// Within-handler op counter (tie-break under `cur_key`).
    sub: u16,
    /// The causal context current for the running handler (set from the
    /// delivered envelope or by `trace_begin`/`trace_adopt`). Always
    /// `None` when the recorder keeps no causal records.
    cur_ctx: Option<TraceContext>,
}

impl<M: Payload> DesCtx<'_, M> {
    /// The store and local index of `node`. A parallel worker may only
    /// reach nodes of its own shard this way (socket ops on remote peers
    /// go through [`DesCtx::sock_op`] instead).
    fn store(&mut self, node: NodeId) -> (&mut NodeStore, usize) {
        let (s, l) = self.shared.map[node.index()];
        match &mut self.access {
            Access::Global(shards) => (&mut shards[s as usize].nodes, l as usize),
            Access::Local { shard, sid, .. } => {
                debug_assert_eq!(s, *sid, "cross-shard state access from a worker");
                (&mut shard.nodes, l as usize)
            }
        }
    }

    /// Route an event to the shard that owns its execution.
    fn push_event(&mut self, key: EventKey, dst_shard: u32, ev: Ev<M>) {
        if self.shared.engine.is_enabled() {
            // Cross-shard traffic gauge: which shard pairs talk, and how
            // much. Same counting in both engines (merged included), so
            // the profile answers partition-locality questions even from
            // a single-threaded run.
            let src = self.shared.map[self.me.index()].0;
            if src != dst_shard {
                self.shared
                    .engine
                    .count_cross_shard(src as usize, dst_shard as usize);
            }
        }
        match &mut self.access {
            Access::Global(shards) => shards[dst_shard as usize].queue.push(key, ev),
            Access::Local { shard, sid, mail } => {
                if dst_shard == *sid {
                    shard.queue.push(key, ev);
                } else {
                    mail[dst_shard as usize].lock().events.push((key, ev));
                }
            }
        }
    }

    /// Apply (serial/merged) or defer (parallel) one socket open/close.
    /// Parallel mode defers even own-shard ops: the per-window sorted
    /// application interleaves them with remote shards' ops in the exact
    /// serial order, which keeps `peak_sockets` bit-identical.
    fn sock_op(&mut self, node: NodeId, open: bool) {
        let (s, l) = self.shared.map[node.index()];
        match &mut self.access {
            Access::Global(shards) => {
                let store = &mut shards[s as usize].nodes;
                if open {
                    store.open_socket(l as usize);
                } else {
                    store.close_socket(l as usize);
                }
            }
            Access::Local { shard, sid, mail } => {
                let op = SockOp {
                    key: self.cur_key,
                    sub: self.sub,
                    node,
                    open,
                };
                self.sub += 1;
                if s == *sid {
                    shard.pending_socks.push(op);
                } else {
                    mail[s as usize].lock().socks.push(op);
                }
            }
        }
    }

    /// Schedule an event on `me`'s own shard at absolute time `at`,
    /// stamped with `me`'s lane and next sequence number.
    fn push_self(&mut self, at: SimTime, ev: Ev<M>) {
        let me = self.me;
        let seq = {
            let (store, li) = self.store(me);
            store.take_seq(li)
        };
        let sid = self.shared.map[me.index()].0;
        self.push_event(EventKey::for_node(at, me.0, seq), sid, ev);
    }
}

impl<M: Payload> Context<M> for DesCtx<'_, M> {
    fn now(&self) -> SimTime {
        self.now
    }

    fn me(&self) -> NodeId {
        self.me
    }

    fn send(&mut self, to: NodeId, msg: M) {
        let shared = self.shared;
        let now = self.now;
        let me = self.me;
        let size = msg.size_bytes();
        let cur_ctx = self.cur_ctx;
        let (depart, arrive, seq) = {
            let (store, li) = self.store(me);
            let depart = store.tx_free(li).max(now) + shared.latency.tx_gap(size);
            store.set_tx_free(li, depart);
            let arrive = depart + shared.latency.latency(size, store.rng(li));
            store.count_sent(li);
            (depart, arrive, store.take_seq(li))
        };
        // Allocate the hop's child span while the sender's context is
        // current; the queue/link split falls out of the DES send math
        // (backlog + transmit gap until departure, wire latency after).
        let hop = cur_ctx.and_then(|ctx| {
            shared.obs.causal_child(ctx).map(|child| HopSend {
                ctx: child,
                parent: ctx.span,
                send_us: now.as_micros(),
                queue_us: depart.as_micros() - now.as_micros(),
            })
        });
        if shared.obs.enabled() {
            let flight = arrive.as_micros() - now.as_micros();
            shared.obs.inc(Counter::MsgsSent);
            shared.obs.add(Counter::BytesSent, size as u64);
            shared.obs.observe(Hist::HopLatencyUs, flight);
            shared.obs.span(
                now.as_micros(),
                flight,
                me.0,
                EventKind::MsgSend,
                to.0 as u64,
                size as u64,
            );
        }
        let dst = shared.map[to.index()].0;
        self.push_event(
            EventKey::for_node(arrive, me.0, seq),
            dst,
            Ev::Deliver {
                from: me,
                to,
                msg,
                hop,
            },
        );
    }

    fn set_timer(&mut self, after: SimSpan, token: u64) {
        let at = self.now + after;
        let node = self.me;
        self.push_self(at, Ev::Timer { node, token });
    }

    fn charge_cpu(&mut self, span: SimSpan) {
        let me = self.me;
        let (store, li) = self.store(me);
        store.charge_cpu(li, span);
    }

    fn alloc_virt(&mut self, delta: i64) {
        let me = self.me;
        let (store, li) = self.store(me);
        store.alloc_virt(li, delta);
    }

    fn alloc_real(&mut self, delta: i64) {
        let me = self.me;
        let (store, li) = self.store(me);
        store.alloc_real(li, delta);
    }

    fn open_socket(&mut self, peer: NodeId) {
        self.shared.obs.inc(Counter::SocketsOpened);
        let me = self.me;
        self.sock_op(me, true);
        self.sock_op(peer, true);
    }

    fn close_socket(&mut self, peer: NodeId) {
        self.shared.obs.inc(Counter::SocketsClosed);
        let me = self.me;
        self.sock_op(me, false);
        self.sock_op(peer, false);
    }

    fn open_socket_for(&mut self, peer: NodeId, dur: SimSpan) {
        self.open_socket(peer);
        let at = self.now + dur;
        let a = self.me;
        self.push_self(at, Ev::SocketClose { a, b: peer });
    }

    fn rng(&mut self) -> &mut StdRng {
        let me = self.me;
        let (store, li) = self.store(me);
        store.rng(li)
    }

    fn is_up(&self, node: NodeId) -> bool {
        self.shared.faults.is_up(node, self.now)
    }

    fn trace_begin(&mut self, flow: FlowKind) -> Option<TraceContext> {
        let ctx = self
            .shared
            .obs
            .causal_begin(flow, self.me.0, self.now.as_micros());
        if ctx.is_some() {
            self.cur_ctx = ctx;
        }
        ctx
    }

    fn trace_current(&self) -> Option<TraceContext> {
        self.cur_ctx
    }

    fn trace_adopt(&mut self, ctx: Option<TraceContext>) {
        if self.shared.obs.causal_enabled() {
            self.cur_ctx = ctx;
        }
    }

    fn trace_backoff(&mut self, ctx: &TraceContext, start: SimTime) {
        self.shared
            .obs
            .causal_backoff(ctx, self.me.0, start.as_micros(), self.now.as_micros());
    }
}

/// Dispatch one event. `actors` is the actor group of the shard the event
/// executes on (deliveries and timers always run on the shard that owns
/// the target node). Returns whether a message was dropped.
fn exec_event<M: Payload, A: Actor<M>>(
    key: EventKey,
    ev: Ev<M>,
    access: Access<'_, M>,
    actors: &mut [A],
    shared: &SimShared,
) -> bool {
    let now = key.time;
    match ev {
        Ev::Deliver { from, to, msg, hop } => {
            if !shared.faults.is_up(to, now) {
                shared.obs.inc(Counter::MsgsDropped);
                shared
                    .obs
                    .event_at(now, to.0, EventKind::MsgDrop, from.0 as u64, 0);
                return true;
            }
            let li = shared.map[to.index()].1 as usize;
            // The delivered context becomes current for the handler, so
            // any sends it makes chain as children of this hop.
            let mut ctx = DesCtx {
                access,
                shared,
                me: to,
                now,
                cur_key: key,
                sub: 0,
                cur_ctx: hop.map(|h| h.ctx),
            };
            {
                let (store, i) = ctx.store(to);
                store.count_received(i);
            }
            let tracing = shared.obs.events_enabled();
            let (size, cpu_before) = if tracing {
                let s = msg.size_bytes() as u64;
                let c = {
                    let (store, i) = ctx.store(to);
                    store.cpu_time(i).as_micros()
                };
                shared
                    .obs
                    .event_at(now, to.0, EventKind::MsgRecv, from.0 as u64, s);
                (s, c)
            } else {
                (0, 0)
            };
            actors[li].on_message(&mut ctx, from, msg);
            if tracing {
                let cpu = {
                    let (store, i) = ctx.store(to);
                    store.cpu_time(i).as_micros()
                } - cpu_before;
                shared.obs.observe(Hist::MsgProcessUs, cpu);
                shared.obs.span(
                    now.as_micros(),
                    cpu,
                    to.0,
                    EventKind::MsgProcess,
                    from.0 as u64,
                    size,
                );
                if let Some(h) = hop {
                    // Close the hop: queue/link were fixed at send time,
                    // processing is the CPU the handler just charged.
                    let recv_us = now.as_micros();
                    shared.obs.causal_record(CausalRecord::Hop {
                        trace: h.ctx.trace,
                        span: h.ctx.span,
                        parent: h.parent,
                        flow: h.ctx.flow,
                        depth: h.ctx.depth,
                        from: from.0,
                        to: to.0,
                        send_us: h.send_us,
                        queue_us: h.queue_us,
                        link_us: recv_us.saturating_sub(h.send_us + h.queue_us),
                        recv_us,
                        process_us: cpu,
                    });
                }
            }
            false
        }
        Ev::Timer { node, token } => {
            let li = shared.map[node.index()].1 as usize;
            let mut ctx = DesCtx {
                access,
                shared,
                me: node,
                now,
                cur_key: key,
                sub: 0,
                cur_ctx: None,
            };
            if !shared.faults.is_up(node, now) {
                // The daemon is down; its periodic work resumes when the
                // node reboots (state is preserved, as for a restarted
                // slurmd). Re-arm the timer for the reboot instant.
                if let Some(up) = shared.faults.next_up_after(node, now) {
                    ctx.push_self(up, Ev::Timer { node, token });
                }
                return false;
            }
            actors[li].on_timer(&mut ctx, token);
            false
        }
        Ev::SocketClose { a, b } => {
            let mut ctx = DesCtx {
                access,
                shared,
                me: a,
                now,
                cur_key: key,
                sub: 0,
                cur_ctx: None,
            };
            ctx.close_socket(b);
            false
        }
        Ev::Fault { node, up } => {
            if up {
                shared.obs.inc(Counter::NodeUps);
                shared.obs.event_at(now, node.0, EventKind::NodeUp, 0, 0);
            } else {
                shared.obs.inc(Counter::NodeDowns);
                shared.obs.event_at(now, node.0, EventKind::NodeDown, 0, 0);
            }
            false
        }
    }
}

/// A sense-reversing barrier that spins briefly before yielding, sized
/// for the microsecond-scale window rounds of the parallel engine (a
/// parking barrier would dominate the window cost; pure spinning would
/// starve oversubscribed hosts).
struct SpinBarrier {
    count: AtomicUsize,
    generation: AtomicUsize,
    total: usize,
}

impl SpinBarrier {
    fn new(total: usize) -> Self {
        SpinBarrier {
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            total,
        }
    }

    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            self.count.store(0, Ordering::Release);
            self.generation.fetch_add(1, Ordering::AcqRel);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                spins += 1;
                if spins < 200 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Per-segment worker coordination: the barrier plus two ping-pong slots
/// into which workers `fetch_min` their queue heads (ping-pong so a round
/// can reset the *other* slot without racing the current one).
struct RoundCtl {
    barrier: SpinBarrier,
    next: [AtomicU64; 2],
}

enum Mode {
    /// Single-threaded k-way merge (identical to the serial engine).
    Merged,
    /// One worker thread per shard under conservative windows.
    Parallel,
}

/// A cluster of actors driven by the discrete-event engine.
///
/// ```
/// use emu::{Actor, Context, NodeId, SimCluster, SimConfig};
/// use simclock::SimTime;
///
/// struct Counter(u32);
/// impl Actor<u64> for Counter {
///     fn on_message(&mut self, ctx: &mut dyn Context<u64>, from: NodeId, msg: u64) {
///         self.0 += 1;
///         if msg > 0 {
///             ctx.send(from, msg - 1); // bounce it back, decremented
///         }
///     }
/// }
///
/// let mut cluster = SimCluster::new(vec![Counter(0), Counter(0)], SimConfig::new(2, 1));
/// cluster.inject(SimTime::ZERO, NodeId(0), NodeId(1), 4);
/// cluster.run_to_quiescence();
/// assert_eq!(cluster.actor(NodeId(1)).0 + cluster.actor(NodeId(0)).0, 5);
/// ```
pub struct SimCluster<M: Payload, A: Actor<M>> {
    /// Actor groups, `actors[shard][local]`.
    actors: Vec<Vec<A>>,
    shards: Vec<Shard<M>>,
    shared: SimShared,
    sampler: Sampler,
    slo: SloEngine,
    mem: MemProfiler,
    sampling: Option<Sampling>,
    /// One series per entry of `sampling.tracked`, in the same order, so
    /// the per-sample hot path is a plain index instead of a hash lookup.
    series: Vec<SampleSeries>,
    /// Next engine-level sampling tick; `None` once the cadence retired.
    sample_next: Option<SimTime>,
    started: bool,
    events_processed: u64,
    now: SimTime,
    /// Creation counter of the system lane (injections, fault markers).
    sys_seq: u64,
    n: usize,
}

impl<M: Payload, A: Actor<M>> SimCluster<M, A> {
    /// Build a cluster where node `i` runs `actors[i]`.
    pub fn new(actors: Vec<A>, config: SimConfig) -> Self {
        let n = actors.len();
        assert!(
            config.faults.cluster_size() == 0 || config.faults.cluster_size() >= n,
            "fault plan covers fewer nodes than the cluster"
        );
        let nshards = config.shards.clamp(1, n.max(1));
        let part: Vec<u32> = match config.partition {
            Some(p) => {
                assert_eq!(p.len(), n, "partition length != node count");
                assert!(
                    p.iter().all(|&s| (s as usize) < nshards),
                    "partition references shard >= shards"
                );
                p
            }
            None => (0..n).map(|i| (i * nshards / n.max(1)) as u32).collect(),
        };
        let mut sampling = config.sampling;
        if sampling.is_none() && config.sampler.enabled() {
            // The sampler alone can drive the sampling cadence, tracking
            // the nodes it was given names for. An end time is required —
            // an open-ended tick would keep the run alive forever.
            if let (Some(interval), Some(until)) =
                (config.sampler.interval(), config.sampler.until())
            {
                sampling = Some(Sampling {
                    interval,
                    tracked: config
                        .sampler
                        .named_nodes()
                        .into_iter()
                        .map(NodeId)
                        .collect(),
                    until,
                });
            }
        }
        let series = sampling
            .as_ref()
            .map(|s| vec![SampleSeries::default(); s.tracked.len()])
            .unwrap_or_default();
        let sample_next = sampling.as_ref().map(|s| SimTime::ZERO + s.interval);

        // Group actors by shard, recording each node's (shard, local).
        let mut map = vec![(0u32, 0u32); n];
        let mut ids: Vec<Vec<u32>> = vec![Vec::new(); nshards];
        let mut groups: Vec<Vec<A>> = (0..nshards).map(|_| Vec::new()).collect();
        for (i, a) in actors.into_iter().enumerate() {
            let s = part[i] as usize;
            map[i] = (part[i], groups[s].len() as u32);
            ids[s].push(i as u32);
            groups[s].push(a);
        }
        let mut shards: Vec<Shard<M>> = ids
            .iter()
            .map(|ids| Shard {
                queue: KeyedQueue::with_capacity(ids.len() * 4 + 16),
                nodes: NodeStore::new(config.seed, ids),
                pending_socks: Vec::new(),
                last_time: SimTime::ZERO,
                events: 0,
                drops: 0,
            })
            .collect();

        let mut sys_seq = 0u64;
        if config.obs.enabled() {
            // Fault-plan markers ride the queues so node_down/node_up land
            // in the trace at their exact virtual time. Skipped entirely
            // when un-observed, keeping the event stream identical.
            for o in config.faults.outages() {
                let s = map[o.node.index()].0 as usize;
                shards[s].queue.push(
                    EventKey::system(o.down_at, sys_seq),
                    Ev::Fault {
                        node: o.node,
                        up: false,
                    },
                );
                sys_seq += 1;
                shards[s].queue.push(
                    EventKey::system(o.up_at, sys_seq),
                    Ev::Fault {
                        node: o.node,
                        up: true,
                    },
                );
                sys_seq += 1;
            }
        }

        config
            .engine
            .attach(nshards, config.latency.min_hop().as_micros());
        SimCluster {
            actors: groups,
            shards,
            shared: SimShared {
                lookahead: config.latency.min_hop(),
                latency: config.latency,
                faults: config.faults,
                obs: config.obs,
                map,
                nshards,
                engine: config.engine,
            },
            sampler: config.sampler,
            slo: config.slo,
            mem: config.mem,
            sampling,
            series,
            sample_next,
            started: false,
            events_processed: 0,
            now: SimTime::ZERO,
            sys_seq,
            n,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the cluster has zero nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of event-queue shards.
    pub fn shard_count(&self) -> usize {
        self.shared.nshards
    }

    /// Whether runs use worker threads (as opposed to the single-threaded
    /// merge): more than one shard, a usable lookahead window, and no
    /// full/causal tracing (whose exports are append-ordered).
    pub fn parallel_enabled(&self) -> bool {
        matches!(self.pick_mode(), Mode::Parallel)
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Inject an external message (e.g. a user's job submission arriving at
    /// the master) at absolute time `at`, appearing to come from `from`.
    pub fn inject(&mut self, at: SimTime, from: NodeId, to: NodeId, msg: M) {
        let at = at.max(self.now);
        let key = EventKey::system(at, self.sys_seq);
        self.sys_seq += 1;
        let dst = self.shared.map[to.index()].0 as usize;
        self.shards[dst].queue.push(
            key,
            Ev::Deliver {
                from,
                to,
                msg,
                hop: None,
            },
        );
    }

    /// Run until the queue is exhausted or `horizon` is reached, whichever
    /// comes first. Returns the number of events processed by this call.
    pub fn run_until(&mut self, horizon: SimTime) -> u64 {
        self.ensure_started();
        let before: u64 = self.shards.iter().map(|s| s.events).sum();
        let mut ticks = 0u64;
        match self.pick_mode() {
            Mode::Merged => {
                self.shared.engine.set_mode(EngineMode::Merged);
                self.run_merged(horizon, &mut ticks);
            }
            Mode::Parallel => {
                self.shared.engine.set_mode(EngineMode::Workers);
                self.run_parallel(horizon, &mut ticks);
            }
        }
        if self.shared.engine.is_enabled() {
            // Queue-depth and slab-occupancy gauges, read once per run:
            // the queues track their own high-water marks, so sampling at
            // run end loses nothing.
            for (si, sh) in self.shards.iter().enumerate() {
                if let Some(slot) = self.shared.engine.shard_slot(si) {
                    slot.observe_queue_depth(sh.queue.high_water() as u64);
                    slot.set_pool(sh.queue.slab_slots() as u64, sh.queue.free_slots() as u64);
                }
            }
        }
        let after: u64 = self.shards.iter().map(|s| s.events).sum();
        let n = after - before + ticks;
        self.events_processed += n;
        n
    }

    /// Run until no events remain. Panics if sampling is configured without
    /// an `until` bound reachable from pending work — use `run_until` then.
    pub fn run_to_quiescence(&mut self) -> u64 {
        self.run_until(SimTime(u64::MAX))
    }

    /// A snapshot of the resource meter of `node`.
    pub fn meter(&self, node: NodeId) -> Meter {
        let (s, l) = self.shared.map[node.index()];
        self.shards[s as usize].nodes.meter(l as usize)
    }

    /// Recorded sample series for a tracked node.
    pub fn series(&self, node: NodeId) -> Option<&SampleSeries> {
        let s = self.sampling.as_ref()?;
        let i = s.tracked.iter().position(|&t| t == node)?;
        self.series.get(i)
    }

    /// Immutable access to an actor (for extracting results after a run).
    pub fn actor(&self, node: NodeId) -> &A {
        let (s, l) = self.shared.map[node.index()];
        &self.actors[s as usize][l as usize]
    }

    /// Mutable access to an actor (for reconfiguring between phases).
    pub fn actor_mut(&mut self, node: NodeId) -> &mut A {
        let (s, l) = self.shared.map[node.index()];
        &mut self.actors[s as usize][l as usize]
    }

    /// Messages dropped because the destination was down at delivery time.
    pub fn dropped_messages(&self) -> u64 {
        self.shards.iter().map(|s| s.drops).sum()
    }

    /// The observability recorder this cluster records into (disabled
    /// unless one was supplied via [`SimConfig`]).
    pub fn obs(&self) -> &Recorder {
        &self.shared.obs
    }

    /// The time-series sampler this cluster feeds (disabled unless one
    /// was supplied via [`SimConfig`]).
    pub fn sampler(&self) -> &Sampler {
        &self.sampler
    }

    /// The wall-clock engine profiler this cluster reports into (disabled
    /// unless one was supplied via [`SimConfig`]).
    pub fn engine_profiler(&self) -> &EngineProfiler {
        &self.shared.engine
    }

    /// The online SLO engine this cluster evaluates on each sampling tick
    /// (disabled unless one was supplied via [`SimConfig`]).
    pub fn slo_engine(&self) -> &SloEngine {
        &self.slo
    }

    /// The host-memory profiler this cluster samples on each sampling
    /// tick (disabled unless one was supplied via [`SimConfig`]).
    pub fn mem_profiler(&self) -> &MemProfiler {
        &self.mem
    }

    /// Total events processed so far (queue events plus sampling ticks).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    fn pick_mode(&self) -> Mode {
        if self.shared.nshards == 1
            || self.shared.obs.events_enabled()
            || self.shared.obs.causal_enabled()
            || self.shared.lookahead.as_micros() == 0
        {
            Mode::Merged
        } else {
            Mode::Parallel
        }
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.n {
            let me = NodeId(i as u32);
            let mut ctx = DesCtx {
                access: Access::Global(&mut self.shards),
                shared: &self.shared,
                me,
                now: SimTime::ZERO,
                cur_key: EventKey::system(SimTime::ZERO, 0),
                sub: 0,
                cur_ctx: None,
            };
            let (s, l) = self.shared.map[i];
            self.actors[s as usize][l as usize].on_start(&mut ctx);
        }
    }

    /// Fire one engine-level sampling tick at `t`. A tick past `until`
    /// retires the cadence without sampling (the "kill tick"), but still
    /// counts as an event and advances the clock — exactly what the
    /// retired event-based scheduling did.
    fn fire_sample(&mut self, t: SimTime) {
        self.now = self.now.max(t);
        let Some(s) = &self.sampling else {
            self.sample_next = None;
            return;
        };
        if t > s.until {
            self.sample_next = None;
            return;
        }
        let feed = self.sampler.due(t);
        for (series, &node) in self.series.iter_mut().zip(&s.tracked) {
            let (sh, li) = self.shared.map[node.index()];
            let sample = self.shards[sh as usize].nodes.sample(li as usize, t);
            if feed {
                let id = node.0;
                self.sampler
                    .record_node(t, id, "footprint_cpu_util", sample.cpu_util);
                self.sampler.record_node(
                    t,
                    id,
                    "footprint_cpu_time_s",
                    sample.cpu_time.as_secs_f64(),
                );
                self.sampler
                    .record_node(t, id, "footprint_virt_bytes", sample.virt_mem as f64);
                self.sampler
                    .record_node(t, id, "footprint_real_bytes", sample.real_mem as f64);
                self.sampler
                    .record_node(t, id, "footprint_sockets", sample.sockets as f64);
            }
            series.push(sample);
        }
        if feed {
            self.sampler.snapshot(t, &self.shared.obs);
        }
        // SLO evaluation rides the sampling cadence: always on the main
        // thread (ticks fire between segments in both engine modes), after
        // the snapshot so hist/gauge signals see this tick's state.
        self.slo.evaluate(t, &self.shared.obs, &self.sampler);
        // Host-memory series ride the same cadence into the sampler's
        // *host* store — the virtual-time store and its exports never see
        // them, so base exports stay byte-identical under profiling.
        if feed {
            let _mem_scope = tag_scope(MemTag::Obs);
            self.mem.sample_into(&self.sampler, t);
        }
        self.sample_next = Some(t + s.interval);
    }

    /// Single-threaded execution: pop the globally minimal key across the
    /// shard queues. With one shard this *is* the serial engine; with
    /// several it is the reference merge the parallel mode must match.
    fn run_merged(&mut self, horizon: SimTime, ticks: &mut u64) {
        let mut prof = MergedProf::new(&self.shared.engine, self.shared.nshards);
        loop {
            let mut best: Option<(EventKey, usize)> = None;
            for (si, sh) in self.shards.iter().enumerate() {
                if let Some(k) = sh.queue.peek_key() {
                    if best.is_none_or(|(bk, _)| k < bk) {
                        best = Some((k, si));
                    }
                }
            }
            // Sampling ticks fire before any event at the same instant.
            if let Some(st) = self.sample_next {
                if st <= horizon && best.is_none_or(|(bk, _)| st <= bk.time) {
                    self.fire_sample(st);
                    *ticks += 1;
                    if let Some(p) = prof.as_mut() {
                        // Tick time belongs to the sampler, not a shard.
                        p.resync();
                    }
                    continue;
                }
            }
            let Some((bk, si)) = best else { break };
            if bk.time > horizon {
                break;
            }
            let (key, ev) = self.shards[si].queue.pop().expect("peeked event vanished");
            let t_pop = prof.as_ref().map(|_| Instant::now());
            debug_assert!(key.time >= self.now, "event time went backwards");
            self.now = key.time;
            let dropped = {
                // Heap traffic inside event execution belongs to the
                // owning shard's `des-shard{n}` tag (FSM dispatch narrows
                // it further); a no-op without `mem-profile`.
                let _mem_scope = tag_scope(MemTag::DesShard(si));
                exec_event(
                    key,
                    ev,
                    Access::Global(&mut self.shards),
                    &mut self.actors[si],
                    &self.shared,
                )
            };
            if let (Some(p), Some(t_pop)) = (prof.as_mut(), t_pop) {
                p.on_event(si, t_pop);
            }
            let sh = &mut self.shards[si];
            sh.events += 1;
            sh.last_time = key.time;
            if dropped {
                sh.drops += 1;
            }
        }
        if let Some(p) = prof.as_mut() {
            p.finish();
        }
    }

    /// Threaded execution under conservative windows. The main thread
    /// handles sampling ticks and termination between *segments*; inside a
    /// segment, one scoped worker per shard advances through window
    /// rounds without touching the main thread.
    fn run_parallel(&mut self, horizon: SimTime, ticks: &mut u64) {
        let k = self.shared.nshards;
        let mail: Vec<Vec<Mutex<MailBatch<M>>>> = (0..k)
            .map(|_| (0..k).map(|_| Mutex::new(MailBatch::default())).collect())
            .collect();
        loop {
            let best = self.shards.iter().filter_map(|s| s.queue.peek_key()).min();
            if let Some(st) = self.sample_next {
                if st <= horizon && best.is_none_or(|bk| st <= bk.time) {
                    self.fire_sample(st);
                    *ticks += 1;
                    continue;
                }
            }
            let Some(bk) = best else { break };
            if bk.time > horizon {
                break;
            }
            // Process events strictly before seg_end, so the next sampling
            // tick (or the horizon) is reached in a fully drained state.
            let hard_end = SimTime(horizon.as_micros().saturating_add(1));
            let seg_end = match self.sample_next {
                Some(st) if st <= horizon => hard_end.min(st),
                _ => hard_end,
            };
            self.parallel_segment(seg_end, &mail);
            for sh in &self.shards {
                self.now = self.now.max(sh.last_time);
            }
        }
    }

    fn parallel_segment(&mut self, seg_end: SimTime, mail: &[Vec<Mutex<MailBatch<M>>>]) {
        let ctl = RoundCtl {
            barrier: SpinBarrier::new(self.shared.nshards),
            next: [AtomicU64::new(u64::MAX), AtomicU64::new(u64::MAX)],
        };
        let shared = &self.shared;
        std::thread::scope(|scope| {
            for (sid, (shard, actors)) in self
                .shards
                .iter_mut()
                .zip(self.actors.iter_mut())
                .enumerate()
            {
                let ctl = &ctl;
                scope.spawn(move || {
                    worker_loop(sid as u32, shard, actors, shared, mail, ctl, seg_end);
                });
            }
        });
    }
}

/// Wall-clock bookkeeping for the merged loop: splits each iteration into
/// queue time (best-key scan + pop) and busy time (handler execution),
/// attributed to the shard that owned the event, and batches contiguous
/// same-shard stretches into one `exec` span for the engine track.
///
/// `None` when profiling is off, so the disabled loop pays one `Option`
/// discriminant check per event and reads no clocks.
struct MergedProf {
    slots: Vec<Arc<ShardSlot>>,
    span_cap: usize,
    /// Maps `Instant`s onto the profiler's epoch-relative nanoseconds
    /// without re-reading the profiler clock per event.
    base_ns: u64,
    base: Instant,
    /// End of the previous attribution (exec end, loop start, or sampler
    /// resync): the next event's queue time starts here.
    last: Instant,
    /// Open exec-span batch: `(shard, span start, events in batch)`.
    batch: Option<(usize, Instant, u32)>,
}

/// Contiguous same-shard events folded into one engine-track span before
/// a flush (also flushed on any shard switch).
const MERGED_SPAN_BATCH: u32 = 8_192;

impl MergedProf {
    fn new(engine: &EngineProfiler, nshards: usize) -> Option<MergedProf> {
        if !engine.is_enabled() {
            return None;
        }
        let slots: Option<Vec<Arc<ShardSlot>>> =
            (0..nshards).map(|si| engine.shard_slot(si)).collect();
        let base_ns = engine.now_ns();
        let now = Instant::now();
        Some(MergedProf {
            slots: slots?,
            span_cap: engine.span_cap(),
            base_ns,
            base: now,
            last: now,
            batch: None,
        })
    }

    fn ns_of(&self, t: Instant) -> u64 {
        self.base_ns + (t - self.base).as_nanos() as u64
    }

    /// Drop wall time that belongs to no shard (sampling ticks).
    fn resync(&mut self) {
        self.flush_span();
        self.last = Instant::now();
    }

    /// Account one executed event: popped at `t_pop`, finished now.
    fn on_event(&mut self, si: usize, t_pop: Instant) {
        let t_done = Instant::now();
        let slot = &self.slots[si];
        slot.add_queue((t_pop - self.last).as_nanos() as u64);
        slot.add_busy((t_done - t_pop).as_nanos() as u64);
        slot.add_wall((t_done - self.last).as_nanos() as u64);
        slot.add_events(1);
        match &mut self.batch {
            Some((shard, _, n)) if *shard == si && *n < MERGED_SPAN_BATCH => *n += 1,
            _ => {
                self.flush_span();
                self.batch = Some((si, self.last, 1));
            }
        }
        self.last = t_done;
    }

    fn flush_span(&mut self) {
        if let Some((si, start, _)) = self.batch.take() {
            let start_ns = self.ns_of(start);
            self.slots[si].push_span(
                self.span_cap,
                EngineSpan {
                    shard: si as u32,
                    phase: EnginePhase::Exec,
                    start_ns,
                    dur_ns: self.ns_of(self.last).saturating_sub(start_ns),
                },
            );
        }
    }

    fn finish(&mut self) {
        self.flush_span();
    }
}

/// Wall-clock bookkeeping for one parallel worker: per-round phase
/// durations (mail drain, barrier waits, window execution) recorded into
/// the worker's own [`ShardSlot`] — no cross-thread contention — plus one
/// engine-track span per phase. `None` when profiling is off.
struct WorkerProf {
    shard: u32,
    slot: Arc<ShardSlot>,
    span_cap: usize,
    base_ns: u64,
    base: Instant,
}

impl WorkerProf {
    fn new(engine: &EngineProfiler, sid: u32) -> Option<WorkerProf> {
        let slot = engine.shard_slot(sid as usize)?;
        let base_ns = engine.now_ns();
        Some(WorkerProf {
            shard: sid,
            slot,
            span_cap: engine.span_cap(),
            base_ns,
            base: Instant::now(),
        })
    }

    fn span(&self, phase: EnginePhase, start: Instant, end: Instant) {
        self.slot.push_span(
            self.span_cap,
            EngineSpan {
                shard: self.shard,
                phase,
                start_ns: self.base_ns + (start - self.base).as_nanos() as u64,
                dur_ns: (end - start).as_nanos() as u64,
            },
        );
    }
}

/// One shard worker's life within a segment: window rounds of
/// drain-mail → apply-socks → agree-on-min → process-window → publish.
fn worker_loop<M: Payload, A: Actor<M>>(
    sid: u32,
    shard: &mut Shard<M>,
    actors: &mut [A],
    shared: &SimShared,
    mail: &[Vec<Mutex<MailBatch<M>>>],
    ctl: &RoundCtl,
    seg_end: SimTime,
) {
    let la = shared.lookahead.as_micros();
    let me = sid as usize;
    let mut slot = 0usize;
    // All heap traffic on this worker thread defaults to the shard's tag
    // (FSM dispatch narrows it); a no-op without `mem-profile`.
    let _mem_scope = tag_scope(MemTag::DesShard(me));
    // Per-worker wall-clock profile. Timestamps are read only when enabled
    // and written only to this shard's own atomics: the virtual-time path
    // (queues, handlers, recorder) never sees them.
    let prof = WorkerProf::new(&shared.engine, sid);
    loop {
        let t0 = prof.as_ref().map(|_| Instant::now());
        // Drain inbound mail (published before the previous round's final
        // barrier, so fully visible here).
        for row in mail.iter() {
            let mut b = row[me].lock();
            for (key, ev) in b.events.drain(..) {
                shard.queue.push(key, ev);
            }
            shard.pending_socks.append(&mut b.socks);
        }
        // Apply deferred socket ops in global order. All pending ops are
        // from the previous window, so sorting the batch by (key, sub)
        // replays exactly the serial interleaving.
        if !shard.pending_socks.is_empty() {
            shard
                .pending_socks
                .sort_unstable_by_key(|op| (op.key, op.sub));
            for op in shard.pending_socks.drain(..) {
                let (s, l) = shared.map[op.node.index()];
                debug_assert_eq!(s, sid, "socket op routed to the wrong shard");
                if op.open {
                    shard.nodes.open_socket(l as usize);
                } else {
                    shard.nodes.close_socket(l as usize);
                }
            }
        }
        // Agree on the global minimum pending time.
        let t1 = prof.as_ref().map(|_| Instant::now());
        let local_min = shard
            .queue
            .peek_key()
            .map_or(u64::MAX, |pk| pk.time.as_micros());
        ctl.next[slot].fetch_min(local_min, Ordering::AcqRel);
        ctl.barrier.wait();
        let g = ctl.next[slot].load(Ordering::Acquire);
        if sid == 0 {
            ctl.next[1 - slot].store(u64::MAX, Ordering::Release);
        }
        let t2 = prof.as_ref().map(|_| Instant::now());
        if let (Some(p), Some(t0), Some(t1), Some(t2)) = (&prof, t0, t1, t2) {
            p.slot.add_drain((t1 - t0).as_nanos() as u64);
            p.slot.add_barrier((t2 - t1).as_nanos() as u64);
            p.span(EnginePhase::Drain, t0, t1);
            p.span(EnginePhase::Barrier, t1, t2);
        }
        if g >= seg_end.as_micros() {
            // Unanimous: every worker computes the same g. All mail was
            // drained above, so the segment ends fully applied.
            if let (Some(p), Some(t0), Some(t2)) = (&prof, t0, t2) {
                p.slot.add_wall((t2 - t0).as_nanos() as u64);
            }
            break;
        }
        // Process this shard's events inside the conservative window. No
        // cross-shard message sent at time >= g can arrive before
        // g + lookahead + 1, so nothing a peer does this round lands in it.
        let wend = SimTime(g.saturating_add(la)).min(seg_end);
        let events_before = shard.events;
        while let Some(pk) = shard.queue.peek_key() {
            if pk.time >= wend {
                break;
            }
            let (key, ev) = shard.queue.pop().expect("peeked event vanished");
            let dropped = exec_event(
                key,
                ev,
                Access::Local {
                    shard: &mut *shard,
                    sid,
                    mail: &mail[me],
                },
                actors,
                shared,
            );
            shard.events += 1;
            shard.last_time = key.time;
            if dropped {
                shard.drops += 1;
            }
        }
        let t3 = prof.as_ref().map(|_| Instant::now());
        // Publish outbound mail before any peer starts its next drain.
        ctl.barrier.wait();
        if let (Some(p), Some(t0), Some(t2), Some(t3)) = (&prof, t0, t2, t3) {
            let t4 = Instant::now();
            let wev = shard.events - events_before;
            p.slot.add_busy((t3 - t2).as_nanos() as u64);
            p.slot.add_barrier((t4 - t3).as_nanos() as u64);
            p.slot.add_wall((t4 - t0).as_nanos() as u64);
            p.slot.add_events(wev);
            // Realized window width: how far this round actually advanced
            // virtual time (clamped by the segment end), vs. the model's
            // full `min_hop()` lookahead.
            p.slot.add_window(wev, wend.as_micros() - g);
            if wev > 0 {
                p.span(EnginePhase::Exec, t2, t3);
            }
            p.span(EnginePhase::Barrier, t3, t4);
        }
        slot ^= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, Outage};

    /// Ping-pong: node 0 sends `k`, receiver replies `k-1`, until zero.
    struct PingPong {
        peer: NodeId,
        initial: Option<u64>,
        received: Vec<u64>,
    }

    impl Actor<u64> for PingPong {
        fn on_start(&mut self, ctx: &mut dyn Context<u64>) {
            if let Some(k) = self.initial {
                ctx.send(self.peer, k);
            }
        }
        fn on_message(&mut self, ctx: &mut dyn Context<u64>, from: NodeId, msg: u64) {
            self.received.push(msg);
            ctx.charge_cpu(SimSpan::from_micros(5));
            if msg > 0 {
                ctx.send(from, msg - 1);
            }
        }
    }

    fn pingpong_cluster_sharded(shards: usize) -> SimCluster<u64, PingPong> {
        let actors = vec![
            PingPong {
                peer: NodeId(1),
                initial: Some(10),
                received: vec![],
            },
            PingPong {
                peer: NodeId(0),
                initial: None,
                received: vec![],
            },
        ];
        let cfg = SimConfig {
            shards,
            ..SimConfig::new(2, 1)
        };
        SimCluster::new(actors, cfg)
    }

    fn pingpong_cluster() -> SimCluster<u64, PingPong> {
        pingpong_cluster_sharded(1)
    }

    #[test]
    fn ping_pong_runs_to_completion() {
        let mut c = pingpong_cluster();
        c.run_to_quiescence();
        assert_eq!(c.actor(NodeId(1)).received, vec![10, 8, 6, 4, 2, 0]);
        assert_eq!(c.actor(NodeId(0)).received, vec![9, 7, 5, 3, 1]);
        assert!(c.now() > SimTime::ZERO);
        // Each delivery charged 5 µs.
        assert_eq!(c.meter(NodeId(1)).cpu_time(), SimSpan::from_micros(30));
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = pingpong_cluster();
        let mut b = pingpong_cluster();
        a.run_to_quiescence();
        b.run_to_quiescence();
        assert_eq!(a.now(), b.now());
        assert_eq!(a.events_processed(), b.events_processed());
    }

    /// The tentpole invariant at its smallest: a 2-shard run (every
    /// message crosses the shard boundary) matches the serial engine
    /// bit-for-bit in outcomes.
    #[test]
    fn sharded_ping_pong_matches_serial() {
        let mut serial = pingpong_cluster();
        let mut sharded = pingpong_cluster_sharded(2);
        assert!(!serial.parallel_enabled());
        assert!(
            sharded.parallel_enabled(),
            "2 shards + no tracing => workers"
        );
        assert_eq!(sharded.shard_count(), 2);
        serial.run_to_quiescence();
        sharded.run_to_quiescence();
        assert_eq!(serial.now(), sharded.now());
        assert_eq!(serial.events_processed(), sharded.events_processed());
        for node in [NodeId(0), NodeId(1)] {
            assert_eq!(serial.actor(node).received, sharded.actor(node).received);
            assert_eq!(
                serial.meter(node).cpu_time(),
                sharded.meter(node).cpu_time()
            );
            assert_eq!(
                serial.meter(node).msg_counts(),
                sharded.meter(node).msg_counts()
            );
        }
    }

    #[test]
    fn horizon_stops_execution() {
        let mut c = pingpong_cluster();
        c.run_until(SimTime(40));
        let total: usize = c.actor(NodeId(0)).received.len() + c.actor(NodeId(1)).received.len();
        assert!(total < 11, "horizon did not stop the run");
        // Continuing finishes the exchange.
        c.run_to_quiescence();
        let total: usize = c.actor(NodeId(0)).received.len() + c.actor(NodeId(1)).received.len();
        assert_eq!(total, 11);
    }

    #[test]
    fn messages_to_down_nodes_are_dropped() {
        let faults = FaultPlan::from_outages(
            2,
            vec![Outage {
                node: NodeId(1),
                down_at: SimTime::ZERO,
                up_at: SimTime::from_secs(1000),
            }],
        );
        let cfg = SimConfig {
            faults,
            ..SimConfig::new(2, 1)
        };
        let actors = vec![
            PingPong {
                peer: NodeId(1),
                initial: Some(3),
                received: vec![],
            },
            PingPong {
                peer: NodeId(0),
                initial: None,
                received: vec![],
            },
        ];
        let mut c = SimCluster::new(actors, cfg);
        c.run_to_quiescence();
        assert!(c.actor(NodeId(1)).received.is_empty());
        assert_eq!(c.dropped_messages(), 1);
    }

    /// An actor that re-arms a periodic timer and counts fires.
    struct Ticker {
        period: SimSpan,
        fires: u32,
    }
    impl Actor<u64> for Ticker {
        fn on_start(&mut self, ctx: &mut dyn Context<u64>) {
            ctx.set_timer(self.period, 0);
        }
        fn on_message(&mut self, _: &mut dyn Context<u64>, _: NodeId, _: u64) {}
        fn on_timer(&mut self, ctx: &mut dyn Context<u64>, _: u64) {
            self.fires += 1;
            ctx.set_timer(self.period, 0);
        }
    }

    #[test]
    fn periodic_timers_fire_until_horizon() {
        let actors = vec![Ticker {
            period: SimSpan::from_secs(10),
            fires: 0,
        }];
        let mut c = SimCluster::new(actors, SimConfig::new(1, 3));
        c.run_until(SimTime::from_secs(95));
        assert_eq!(c.actor(NodeId(0)).fires, 9);
    }

    #[test]
    fn timer_during_outage_resumes_at_reboot() {
        let faults = FaultPlan::from_outages(
            1,
            vec![Outage {
                node: NodeId(0),
                down_at: SimTime::from_secs(5),
                up_at: SimTime::from_secs(100),
            }],
        );
        let cfg = SimConfig {
            faults,
            ..SimConfig::new(1, 3)
        };
        let actors = vec![Ticker {
            period: SimSpan::from_secs(10),
            fires: 0,
        }];
        let mut c = SimCluster::new(actors, cfg);
        c.run_until(SimTime::from_secs(125));
        // First fire would land at t=10s (node down) -> deferred to t=100s,
        // then fires at 100, 110, 120.
        assert_eq!(c.actor(NodeId(0)).fires, 3);
    }

    #[test]
    fn sampling_records_tracked_series() {
        let mut cfg = SimConfig::new(2, 5);
        cfg.sampling = Some(Sampling {
            interval: SimSpan::from_secs(1),
            tracked: vec![NodeId(0)],
            until: SimTime::from_secs(5),
        });
        let actors = vec![
            Ticker {
                period: SimSpan::from_secs(1),
                fires: 0,
            },
            Ticker {
                period: SimSpan::from_secs(1),
                fires: 0,
            },
        ];
        let mut c = SimCluster::new(actors, cfg);
        c.run_until(SimTime::from_secs(10));
        let series = c.series(NodeId(0)).unwrap();
        assert_eq!(series.samples.len(), 5);
        assert!(c.series(NodeId(1)).is_none());
    }

    #[test]
    fn sampler_rides_the_sampling_cadence() {
        let mut cfg = SimConfig::new(2, 5);
        let sampler = Sampler::every_until(SimSpan::from_secs(1), SimTime::from_secs(5));
        sampler.name_node(0, "master");
        cfg.sampler = sampler.clone();
        cfg.obs = Recorder::metrics_only();
        // No explicit Sampling: one is synthesized from the sampler.
        let actors = vec![
            Ticker {
                period: SimSpan::from_secs(1),
                fires: 0,
            },
            Ticker {
                period: SimSpan::from_secs(1),
                fires: 0,
            },
        ];
        let mut c = SimCluster::new(actors, cfg);
        c.run_until(SimTime::from_secs(10));
        let store = sampler.store();
        let pts = store
            .get(&obs::MetricId::new("footprint_sockets").with("node", "master"))
            .expect("footprint series for the named node");
        assert_eq!(pts.len(), 5);
        assert!(
            store.get(&obs::MetricId::new("msgs_sent")).is_some(),
            "recorder snapshot series missing"
        );
        // The synthesized sampling also feeds the classic meter series.
        assert_eq!(c.series(NodeId(0)).expect("meter series").samples.len(), 5);
    }

    #[test]
    fn ephemeral_sockets_autoclose() {
        struct Opener;
        impl Actor<u64> for Opener {
            fn on_start(&mut self, ctx: &mut dyn Context<u64>) {
                if ctx.me() == NodeId(0) {
                    ctx.open_socket_for(NodeId(1), SimSpan::from_secs(2));
                }
            }
            fn on_message(&mut self, _: &mut dyn Context<u64>, _: NodeId, _: u64) {}
        }
        let mut c = SimCluster::new(vec![Opener, Opener], SimConfig::new(2, 1));
        c.run_until(SimTime::from_secs(1));
        assert_eq!(c.meter(NodeId(0)).sockets(), 1);
        assert_eq!(c.meter(NodeId(1)).sockets(), 1);
        c.run_until(SimTime::from_secs(3));
        assert_eq!(c.meter(NodeId(0)).sockets(), 0);
        assert_eq!(c.meter(NodeId(0)).peak_sockets(), 1);
    }

    /// A chatty mesh: every node runs a periodic timer, messages a few
    /// peers, charges CPU, opens ephemeral sockets, and some nodes fail —
    /// exercising every event kind across shard boundaries.
    struct Mesh {
        n: u32,
        received: u64,
        sent: u64,
    }
    impl Actor<u64> for Mesh {
        fn on_start(&mut self, ctx: &mut dyn Context<u64>) {
            let me = ctx.me().0 as u64;
            ctx.set_timer(SimSpan::from_millis(50 + (me % 7) * 13), me);
            ctx.alloc_virt(1_000_000 + me as i64);
            ctx.alloc_real(100_000);
        }
        fn on_message(&mut self, ctx: &mut dyn Context<u64>, from: NodeId, msg: u64) {
            self.received += 1;
            ctx.charge_cpu(SimSpan::from_micros(7));
            if msg.is_multiple_of(5) {
                ctx.open_socket_for(from, SimSpan::from_millis(3));
            }
            if msg > 0 && !msg.is_multiple_of(3) {
                ctx.send(from, msg / 2);
                self.sent += 1;
            }
        }
        fn on_timer(&mut self, ctx: &mut dyn Context<u64>, token: u64) {
            let me = ctx.me().0;
            let peer = NodeId((me + 3) % self.n);
            let peer2 = NodeId((me * 7 + 1) % self.n);
            ctx.send(peer, token + 20);
            ctx.send(peer2, token + 11);
            self.sent += 2;
            ctx.charge_cpu(SimSpan::from_micros(3));
            if ctx.now() < SimTime::from_secs(3) {
                ctx.set_timer(SimSpan::from_millis(100 + (me as u64 % 5) * 17), token);
            }
        }
    }

    fn mesh_cluster(n: usize, shards: usize, seed: u64) -> SimCluster<u64, Mesh> {
        let faults = FaultPlan::from_outages(
            n,
            vec![
                Outage {
                    node: NodeId(2),
                    down_at: SimTime::from_millis(400),
                    up_at: SimTime::from_millis(1900),
                },
                Outage {
                    node: NodeId((n - 1) as u32),
                    down_at: SimTime::from_millis(1200),
                    up_at: SimTime::from_millis(2500),
                },
            ],
        );
        let cfg = SimConfig {
            shards,
            faults,
            ..SimConfig::new(n, seed)
        };
        let actors = (0..n)
            .map(|_| Mesh {
                n: n as u32,
                received: 0,
                sent: 0,
            })
            .collect();
        SimCluster::new(actors, cfg)
    }

    /// The full parity sweep: 2/4/8-shard parallel runs reproduce the
    /// serial outcomes bit-for-bit — meters (including socket peaks, whose
    /// order-sensitivity is the hardest case), drops, clock, event counts.
    #[test]
    fn sharded_mesh_matches_serial_across_shard_counts() {
        let n = 16;
        let mut serial = mesh_cluster(n, 1, 42);
        serial.run_until(SimTime::from_secs(4));
        for shards in [2usize, 4, 8] {
            let mut par = mesh_cluster(n, shards, 42);
            assert!(par.parallel_enabled());
            par.run_until(SimTime::from_secs(4));
            assert_eq!(par.now(), serial.now(), "{shards} shards: clock differs");
            assert_eq!(
                par.events_processed(),
                serial.events_processed(),
                "{shards} shards: event count differs"
            );
            assert_eq!(par.dropped_messages(), serial.dropped_messages());
            for i in 0..n {
                let node = NodeId(i as u32);
                let (a, b) = (serial.meter(node), par.meter(node));
                assert_eq!(a.cpu_time(), b.cpu_time(), "node {i} cpu");
                assert_eq!(a.msg_counts(), b.msg_counts(), "node {i} msgs");
                assert_eq!(a.peak_sockets(), b.peak_sockets(), "node {i} socket peak");
                assert_eq!(a.sockets(), b.sockets(), "node {i} sockets");
                assert_eq!(a.peak_mem(), b.peak_mem(), "node {i} mem peaks");
                assert_eq!(
                    serial.actor(node).received,
                    par.actor(node).received,
                    "node {i} received count"
                );
                assert_eq!(serial.actor(node).sent, par.actor(node).sent);
            }
        }
    }

    /// Resuming a horizon-bounded run in more horizons yields the same
    /// final state in parallel mode as one long serial run.
    #[test]
    fn sharded_run_in_phases_matches_serial() {
        let mut serial = mesh_cluster(12, 1, 7);
        serial.run_until(SimTime::from_secs(4));
        let mut par = mesh_cluster(12, 4, 7);
        par.run_until(SimTime::from_millis(700));
        par.run_until(SimTime::from_millis(1900));
        par.run_until(SimTime::from_secs(4));
        assert_eq!(par.now(), serial.now());
        assert_eq!(par.events_processed(), serial.events_processed());
        for i in 0..12 {
            let node = NodeId(i as u32);
            assert_eq!(serial.meter(node).cpu_time(), par.meter(node).cpu_time());
            assert_eq!(serial.actor(node).received, par.actor(node).received);
        }
    }

    /// Sampling ticks interleave identically with events in both engines,
    /// and the tracked series come out bit-identical.
    #[test]
    fn sharded_sampling_matches_serial() {
        let make = |shards: usize| {
            let mut c = {
                let mut cfg = SimConfig {
                    shards,
                    faults: FaultPlan::none(10),
                    ..SimConfig::new(10, 9)
                };
                cfg.sampling = Some(Sampling {
                    interval: SimSpan::from_secs(1),
                    tracked: vec![NodeId(0), NodeId(5), NodeId(9)],
                    until: SimTime::from_secs(3),
                });
                let actors = (0..10)
                    .map(|_| Mesh {
                        n: 10,
                        received: 0,
                        sent: 0,
                    })
                    .collect();
                SimCluster::new(actors, cfg)
            };
            c.run_until(SimTime::from_secs(5));
            c
        };
        let serial = make(1);
        let par = make(4);
        assert_eq!(serial.now(), par.now());
        assert_eq!(serial.events_processed(), par.events_processed());
        for node in [NodeId(0), NodeId(5), NodeId(9)] {
            assert_eq!(
                serial.series(node).unwrap().samples,
                par.series(node).unwrap().samples
            );
        }
    }

    /// Full tracing forces the single-threaded merge, which still uses the
    /// sharded queues — outcomes must match the 1-shard run exactly.
    #[test]
    fn tracing_run_falls_back_to_merge_and_matches() {
        let mut cfg = SimConfig {
            shards: 4,
            ..SimConfig::new(8, 11)
        };
        cfg.obs = Recorder::full();
        let actors = (0..8)
            .map(|_| Mesh {
                n: 8,
                received: 0,
                sent: 0,
            })
            .collect();
        let mut traced = SimCluster::new(actors, cfg);
        assert!(!traced.parallel_enabled(), "tracing must force the merge");
        traced.run_until(SimTime::from_secs(2));

        // mesh_cluster has faults; build fault-free to mirror the traced cfg.
        let mut plain = {
            let actors = (0..8)
                .map(|_| Mesh {
                    n: 8,
                    received: 0,
                    sent: 0,
                })
                .collect();
            SimCluster::new(actors, SimConfig::new(8, 11))
        };
        plain.run_until(SimTime::from_secs(2));
        assert_eq!(traced.now(), plain.now());
        for i in 0..8 {
            let node = NodeId(i as u32);
            assert_eq!(traced.meter(node).cpu_time(), plain.meter(node).cpu_time());
            assert_eq!(traced.actor(node).received, plain.actor(node).received);
        }
    }

    /// An explicit partition overrides the contiguous default.
    #[test]
    fn custom_partition_is_honored_and_matches() {
        let n = 9;
        let mut serial = mesh_cluster(n, 1, 13);
        serial.run_until(SimTime::from_secs(2));
        let cfg = SimConfig {
            shards: 3,
            partition: Some((0..n).map(|i| ((i * 5 + 2) % 3) as u32).collect()),
            faults: FaultPlan::from_outages(
                n,
                vec![
                    Outage {
                        node: NodeId(2),
                        down_at: SimTime::from_millis(400),
                        up_at: SimTime::from_millis(1900),
                    },
                    Outage {
                        node: NodeId((n - 1) as u32),
                        down_at: SimTime::from_millis(1200),
                        up_at: SimTime::from_millis(2500),
                    },
                ],
            ),
            ..SimConfig::new(n, 13)
        };
        let actors = (0..n)
            .map(|_| Mesh {
                n: n as u32,
                received: 0,
                sent: 0,
            })
            .collect();
        let mut scattered = SimCluster::new(actors, cfg);
        scattered.run_until(SimTime::from_secs(2));
        assert_eq!(serial.now(), scattered.now());
        for i in 0..n {
            let node = NodeId(i as u32);
            assert_eq!(serial.actor(node).received, scattered.actor(node).received);
            assert_eq!(
                serial.meter(node).peak_sockets(),
                scattered.meter(node).peak_sockets()
            );
        }
    }

    #[test]
    #[should_panic(expected = "partition length")]
    fn bad_partition_length_panics() {
        let cfg = SimConfig {
            shards: 2,
            partition: Some(vec![0]),
            ..SimConfig::new(2, 1)
        };
        let _ = SimCluster::new(
            vec![
                Ticker {
                    period: SimSpan::from_secs(1),
                    fires: 0,
                },
                Ticker {
                    period: SimSpan::from_secs(1),
                    fires: 0,
                },
            ],
            cfg,
        );
    }
}
