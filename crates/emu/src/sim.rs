//! The discrete-event transport: deterministic, fast, and scalable to the
//! 20K+-node clusters of the paper's evaluation.

use crate::actor::{Actor, Context, Payload};
use crate::fault::FaultPlan;
use crate::meter::{Meter, SampleSeries};
use crate::network::LatencyModel;
use crate::node::NodeId;
use obs::{
    CausalRecord, Counter, EventKind, FlowKind, Hist, HopSend, Recorder, Sampler, TraceContext,
};
use rand::rngs::StdRng;
use simclock::rng::stream_rng;
use simclock::{EventQueue, SimSpan, SimTime};

/// Configuration of a simulated cluster.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Master seed; every node derives an independent RNG stream from it.
    pub seed: u64,
    /// Link model shared by all node pairs.
    pub latency: LatencyModel,
    /// Ground-truth outage schedule.
    pub faults: FaultPlan,
    /// Optional metering: `(interval, tracked nodes, stop time)`. Samples
    /// are recorded for the tracked nodes only — at 20K nodes a 1 Hz series
    /// for everyone would dwarf the experiment itself.
    pub sampling: Option<Sampling>,
    /// Observability sink. Disabled by default; when enabled the transport
    /// records message counters/latency histograms (and, in full-trace
    /// mode, send/recv/process spans plus fault-plan node up/down marks).
    pub obs: Recorder,
    /// Time-series sink. Disabled by default; when enabled, each meter
    /// sampling tick also records per-node `footprint_*{node=...}` series
    /// and snapshots the recorder's metrics into the sampler's store. When
    /// no explicit [`Sampling`] is configured, one is synthesized from the
    /// sampler's cadence over its named nodes (the sampler must then have
    /// an end time, or no ticks are scheduled).
    pub sampler: Sampler,
}

/// Periodic meter sampling configuration.
#[derive(Clone, Debug)]
pub struct Sampling {
    /// Sampling period (the paper samples once per second).
    pub interval: SimSpan,
    /// Nodes whose meters are recorded.
    pub tracked: Vec<NodeId>,
    /// No samples are taken after this time.
    pub until: SimTime,
}

impl SimConfig {
    /// A default config for `n` fault-free nodes.
    pub fn new(n: usize, seed: u64) -> Self {
        SimConfig {
            seed,
            latency: LatencyModel::default(),
            faults: FaultPlan::none(n),
            sampling: None,
            obs: Recorder::disabled(),
            sampler: Sampler::disabled(),
        }
    }
}

enum Ev<M> {
    Deliver {
        from: NodeId,
        to: NodeId,
        msg: M,
        /// Causal-trace envelope: `Some` only while a trace is current on
        /// the sender *and* the recorder keeps causal records. Riding the
        /// envelope (not the payload) keeps modelled wire sizes — and so
        /// every latency draw and event time — identical with tracing on.
        hop: Option<HopSend>,
    },
    Timer {
        node: NodeId,
        token: u64,
    },
    SocketClose {
        a: NodeId,
        b: NodeId,
    },
    Sample,
    /// Fault-plan marker so the trace shows outages at their virtual time.
    /// Only queued when the recorder is enabled, so un-observed runs see
    /// an identical event stream.
    Fault {
        node: NodeId,
        up: bool,
    },
}

/// Everything the context needs, kept apart from the actors so that an
/// actor and its context can be mutably borrowed at the same time.
struct Inner<M> {
    queue: EventQueue<Ev<M>>,
    meters: Vec<Meter>,
    tx_free: Vec<SimTime>,
    rngs: Vec<StdRng>,
    latency: LatencyModel,
    faults: FaultPlan,
    msg_drops: u64,
    obs: Recorder,
    sampler: Sampler,
    /// The causal context current for the actor handler running right now
    /// (set from the delivered envelope or by `trace_begin`/`trace_adopt`,
    /// cleared when the handler returns). Always `None` when the recorder
    /// keeps no causal records.
    cur_ctx: Option<TraceContext>,
}

impl<M: Payload> Inner<M> {
    fn send_from(&mut self, me: NodeId, to: NodeId, msg: M) {
        let now = self.queue.now();
        let size = msg.size_bytes();
        let depart = self.tx_free[me.index()].max(now) + self.latency.tx_gap(size);
        self.tx_free[me.index()] = depart;
        let arrive = depart + self.latency.latency(size, &mut self.rngs[me.index()]);
        // Allocate the hop's child span while the sender's context is
        // current; the queue/link split falls out of the DES send math
        // (backlog + transmit gap until departure, wire latency after).
        let hop = self.cur_ctx.and_then(|ctx| {
            self.obs.causal_child(ctx).map(|child| HopSend {
                ctx: child,
                parent: ctx.span,
                send_us: now.as_micros(),
                queue_us: depart.as_micros() - now.as_micros(),
            })
        });
        self.meters[me.index()].count_sent();
        if self.obs.enabled() {
            let flight = arrive.as_micros() - now.as_micros();
            self.obs.inc(Counter::MsgsSent);
            self.obs.add(Counter::BytesSent, size as u64);
            self.obs.observe(Hist::HopLatencyUs, flight);
            self.obs.span(
                now.as_micros(),
                flight,
                me.0,
                EventKind::MsgSend,
                to.0 as u64,
                size as u64,
            );
        }
        self.queue.push(
            arrive,
            Ev::Deliver {
                from: me,
                to,
                msg,
                hop,
            },
        );
    }

    fn open_socket(&mut self, a: NodeId, b: NodeId) {
        self.meters[a.index()].open_socket();
        self.meters[b.index()].open_socket();
        self.obs.inc(Counter::SocketsOpened);
    }

    fn close_socket(&mut self, a: NodeId, b: NodeId) {
        self.meters[a.index()].close_socket();
        self.meters[b.index()].close_socket();
        self.obs.inc(Counter::SocketsClosed);
    }
}

struct DesCtx<'a, M> {
    inner: &'a mut Inner<M>,
    me: NodeId,
}

impl<M: Payload> Context<M> for DesCtx<'_, M> {
    fn now(&self) -> SimTime {
        self.inner.queue.now()
    }

    fn me(&self) -> NodeId {
        self.me
    }

    fn send(&mut self, to: NodeId, msg: M) {
        self.inner.send_from(self.me, to, msg);
    }

    fn set_timer(&mut self, after: SimSpan, token: u64) {
        let at = self.inner.queue.now() + after;
        self.inner.queue.push(
            at,
            Ev::Timer {
                node: self.me,
                token,
            },
        );
    }

    fn charge_cpu(&mut self, span: SimSpan) {
        self.inner.meters[self.me.index()].charge_cpu(span);
    }

    fn alloc_virt(&mut self, delta: i64) {
        self.inner.meters[self.me.index()].alloc_virt(delta);
    }

    fn alloc_real(&mut self, delta: i64) {
        self.inner.meters[self.me.index()].alloc_real(delta);
    }

    fn open_socket(&mut self, peer: NodeId) {
        self.inner.open_socket(self.me, peer);
    }

    fn close_socket(&mut self, peer: NodeId) {
        self.inner.close_socket(self.me, peer);
    }

    fn open_socket_for(&mut self, peer: NodeId, dur: SimSpan) {
        self.inner.open_socket(self.me, peer);
        let at = self.inner.queue.now() + dur;
        self.inner.queue.push(
            at,
            Ev::SocketClose {
                a: self.me,
                b: peer,
            },
        );
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.inner.rngs[self.me.index()]
    }

    fn is_up(&self, node: NodeId) -> bool {
        self.inner.faults.is_up(node, self.inner.queue.now())
    }

    fn trace_begin(&mut self, flow: FlowKind) -> Option<TraceContext> {
        let ctx = self
            .inner
            .obs
            .causal_begin(flow, self.me.0, self.inner.queue.now().as_micros());
        if ctx.is_some() {
            self.inner.cur_ctx = ctx;
        }
        ctx
    }

    fn trace_current(&self) -> Option<TraceContext> {
        self.inner.cur_ctx
    }

    fn trace_adopt(&mut self, ctx: Option<TraceContext>) {
        if self.inner.obs.causal_enabled() {
            self.inner.cur_ctx = ctx;
        }
    }

    fn trace_backoff(&mut self, ctx: &TraceContext, start: SimTime) {
        self.inner.obs.causal_backoff(
            ctx,
            self.me.0,
            start.as_micros(),
            self.inner.queue.now().as_micros(),
        );
    }
}

/// A cluster of actors driven by the discrete-event engine.
///
/// ```
/// use emu::{Actor, Context, NodeId, SimCluster, SimConfig};
/// use simclock::SimTime;
///
/// struct Counter(u32);
/// impl Actor<u64> for Counter {
///     fn on_message(&mut self, ctx: &mut dyn Context<u64>, from: NodeId, msg: u64) {
///         self.0 += 1;
///         if msg > 0 {
///             ctx.send(from, msg - 1); // bounce it back, decremented
///         }
///     }
/// }
///
/// let mut cluster = SimCluster::new(vec![Counter(0), Counter(0)], SimConfig::new(2, 1));
/// cluster.inject(SimTime::ZERO, NodeId(0), NodeId(1), 4);
/// cluster.run_to_quiescence();
/// assert_eq!(cluster.actor(NodeId(1)).0 + cluster.actor(NodeId(0)).0, 5);
/// ```
pub struct SimCluster<M: Payload, A: Actor<M>> {
    actors: Vec<A>,
    inner: Inner<M>,
    sampling: Option<Sampling>,
    /// One series per entry of `sampling.tracked`, in the same order, so
    /// the per-sample hot path is a plain index instead of a hash lookup.
    series: Vec<SampleSeries>,
    started: bool,
    events_processed: u64,
}

impl<M: Payload, A: Actor<M>> SimCluster<M, A> {
    /// Build a cluster where node `i` runs `actors[i]`.
    pub fn new(actors: Vec<A>, config: SimConfig) -> Self {
        let n = actors.len();
        assert!(
            config.faults.cluster_size() == 0 || config.faults.cluster_size() >= n,
            "fault plan covers fewer nodes than the cluster"
        );
        let mut queue = EventQueue::with_capacity(n * 4);
        let mut sampling = config.sampling;
        if sampling.is_none() && config.sampler.enabled() {
            // The sampler alone can drive the sampling cadence, tracking
            // the nodes it was given names for. An end time is required —
            // an open-ended tick would keep the queue alive forever.
            if let (Some(interval), Some(until)) =
                (config.sampler.interval(), config.sampler.until())
            {
                sampling = Some(Sampling {
                    interval,
                    tracked: config
                        .sampler
                        .named_nodes()
                        .into_iter()
                        .map(NodeId)
                        .collect(),
                    until,
                });
            }
        }
        let series = sampling
            .as_ref()
            .map(|s| vec![SampleSeries::default(); s.tracked.len()])
            .unwrap_or_default();
        if let Some(s) = &sampling {
            queue.push(SimTime::ZERO + s.interval, Ev::Sample);
        }
        if config.obs.enabled() {
            // Fault-plan markers ride the queue so node_down/node_up land in
            // the trace at their exact virtual time. Skipped entirely when
            // un-observed, keeping the event stream identical to the seed.
            for o in config.faults.outages() {
                queue.push(
                    o.down_at,
                    Ev::Fault {
                        node: o.node,
                        up: false,
                    },
                );
                queue.push(
                    o.up_at,
                    Ev::Fault {
                        node: o.node,
                        up: true,
                    },
                );
            }
        }
        SimCluster {
            actors,
            inner: Inner {
                queue,
                meters: (0..n).map(|_| Meter::new()).collect(),
                tx_free: vec![SimTime::ZERO; n],
                rngs: (0..n).map(|i| stream_rng(config.seed, i as u64)).collect(),
                latency: config.latency,
                faults: config.faults,
                msg_drops: 0,
                obs: config.obs,
                sampler: config.sampler,
                cur_ctx: None,
            },
            sampling,
            series,
            started: false,
            events_processed: 0,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.actors.len()
    }

    /// Whether the cluster has zero nodes.
    pub fn is_empty(&self) -> bool {
        self.actors.is_empty()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.queue.now()
    }

    /// Inject an external message (e.g. a user's job submission arriving at
    /// the master) at absolute time `at`, appearing to come from `from`.
    pub fn inject(&mut self, at: SimTime, from: NodeId, to: NodeId, msg: M) {
        self.inner.queue.push(
            at,
            Ev::Deliver {
                from,
                to,
                msg,
                hop: None,
            },
        );
    }

    /// Run until the queue is exhausted or `horizon` is reached, whichever
    /// comes first. Returns the number of events processed by this call.
    pub fn run_until(&mut self, horizon: SimTime) -> u64 {
        self.ensure_started();
        let mut n = 0;
        while let Some(t) = self.inner.queue.peek_time() {
            if t > horizon {
                break;
            }
            let (_, ev) = self.inner.queue.pop().expect("peeked event vanished");
            self.dispatch(ev);
            n += 1;
        }
        self.events_processed += n;
        n
    }

    /// Run until no events remain. Panics if sampling is configured without
    /// an `until` bound reachable from pending work — use `run_until` then.
    pub fn run_to_quiescence(&mut self) -> u64 {
        self.run_until(SimTime(u64::MAX))
    }

    /// The resource meter of `node`.
    pub fn meter(&self, node: NodeId) -> &Meter {
        &self.inner.meters[node.index()]
    }

    /// Recorded sample series for a tracked node.
    pub fn series(&self, node: NodeId) -> Option<&SampleSeries> {
        let s = self.sampling.as_ref()?;
        let i = s.tracked.iter().position(|&t| t == node)?;
        self.series.get(i)
    }

    /// Immutable access to an actor (for extracting results after a run).
    pub fn actor(&self, node: NodeId) -> &A {
        &self.actors[node.index()]
    }

    /// Mutable access to an actor (for reconfiguring between phases).
    pub fn actor_mut(&mut self, node: NodeId) -> &mut A {
        &mut self.actors[node.index()]
    }

    /// Messages dropped because the destination was down at delivery time.
    pub fn dropped_messages(&self) -> u64 {
        self.inner.msg_drops
    }

    /// The observability recorder this cluster records into (disabled
    /// unless one was supplied via [`SimConfig`]).
    pub fn obs(&self) -> &Recorder {
        &self.inner.obs
    }

    /// The time-series sampler this cluster feeds (disabled unless one
    /// was supplied via [`SimConfig`]).
    pub fn sampler(&self) -> &Sampler {
        &self.inner.sampler
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.actors.len() {
            let me = NodeId(i as u32);
            let mut ctx = DesCtx {
                inner: &mut self.inner,
                me,
            };
            self.actors[i].on_start(&mut ctx);
            self.inner.cur_ctx = None;
        }
    }

    fn dispatch(&mut self, ev: Ev<M>) {
        match ev {
            Ev::Deliver { from, to, msg, hop } => {
                let now = self.inner.queue.now();
                if !self.inner.faults.is_up(to, now) {
                    self.inner.msg_drops += 1;
                    self.inner.obs.inc(Counter::MsgsDropped);
                    self.inner
                        .obs
                        .event_at(now, to.0, EventKind::MsgDrop, from.0 as u64, 0);
                    return;
                }
                self.inner.meters[to.index()].count_received();
                let tracing = self.inner.obs.events_enabled();
                let (size, cpu_before) = if tracing {
                    let s = msg.size_bytes() as u64;
                    let c = self.inner.meters[to.index()].cpu_time().as_micros();
                    self.inner
                        .obs
                        .event_at(now, to.0, EventKind::MsgRecv, from.0 as u64, s);
                    (s, c)
                } else {
                    (0, 0)
                };
                // The delivered context becomes current for the handler, so
                // any sends it makes chain as children of this hop.
                self.inner.cur_ctx = hop.map(|h| h.ctx);
                let mut ctx = DesCtx {
                    inner: &mut self.inner,
                    me: to,
                };
                self.actors[to.index()].on_message(&mut ctx, from, msg);
                self.inner.cur_ctx = None;
                if tracing {
                    let cpu = self.inner.meters[to.index()].cpu_time().as_micros() - cpu_before;
                    self.inner.obs.observe(Hist::MsgProcessUs, cpu);
                    self.inner.obs.span(
                        now.as_micros(),
                        cpu,
                        to.0,
                        EventKind::MsgProcess,
                        from.0 as u64,
                        size,
                    );
                    if let Some(h) = hop {
                        // Close the hop: queue/link were fixed at send time,
                        // processing is the CPU the handler just charged.
                        let recv_us = now.as_micros();
                        self.inner.obs.causal_record(CausalRecord::Hop {
                            trace: h.ctx.trace,
                            span: h.ctx.span,
                            parent: h.parent,
                            flow: h.ctx.flow,
                            depth: h.ctx.depth,
                            from: from.0,
                            to: to.0,
                            send_us: h.send_us,
                            queue_us: h.queue_us,
                            link_us: recv_us.saturating_sub(h.send_us + h.queue_us),
                            recv_us,
                            process_us: cpu,
                        });
                    }
                }
            }
            Ev::Timer { node, token } => {
                let now = self.inner.queue.now();
                if !self.inner.faults.is_up(node, now) {
                    // The daemon is down; its periodic work resumes when the
                    // node reboots (state is preserved, as for a restarted
                    // slurmd). Re-arm the timer for the reboot instant.
                    if let Some(up) = self.inner.faults.next_up_after(node, now) {
                        self.inner.queue.push(up, Ev::Timer { node, token });
                    }
                    return;
                }
                let mut ctx = DesCtx {
                    inner: &mut self.inner,
                    me: node,
                };
                self.actors[node.index()].on_timer(&mut ctx, token);
                // Timer handlers may begin/adopt a trace; it ends with them.
                self.inner.cur_ctx = None;
            }
            Ev::SocketClose { a, b } => {
                self.inner.close_socket(a, b);
            }
            Ev::Sample => {
                let Some(s) = &self.sampling else { return };
                let now = self.inner.queue.now();
                if now > s.until {
                    return;
                }
                let sampler = &self.inner.sampler;
                let feed_series = sampler.due(now);
                for (series, &node) in self.series.iter_mut().zip(&s.tracked) {
                    let sample = self.inner.meters[node.index()].sample(now);
                    if feed_series {
                        let id = node.0;
                        sampler.record_node(now, id, "footprint_cpu_util", sample.cpu_util);
                        sampler.record_node(
                            now,
                            id,
                            "footprint_cpu_time_s",
                            sample.cpu_time.as_secs_f64(),
                        );
                        sampler.record_node(
                            now,
                            id,
                            "footprint_virt_bytes",
                            sample.virt_mem as f64,
                        );
                        sampler.record_node(
                            now,
                            id,
                            "footprint_real_bytes",
                            sample.real_mem as f64,
                        );
                        sampler.record_node(now, id, "footprint_sockets", sample.sockets as f64);
                    }
                    series.push(sample);
                }
                if feed_series {
                    sampler.snapshot(now, &self.inner.obs);
                }
                self.inner.queue.push(now + s.interval, Ev::Sample);
            }
            Ev::Fault { node, up } => {
                let now = self.inner.queue.now();
                if up {
                    self.inner.obs.inc(Counter::NodeUps);
                    self.inner
                        .obs
                        .event_at(now, node.0, EventKind::NodeUp, 0, 0);
                } else {
                    self.inner.obs.inc(Counter::NodeDowns);
                    self.inner
                        .obs
                        .event_at(now, node.0, EventKind::NodeDown, 0, 0);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, Outage};

    /// Ping-pong: node 0 sends `k`, receiver replies `k-1`, until zero.
    struct PingPong {
        peer: NodeId,
        initial: Option<u64>,
        received: Vec<u64>,
    }

    impl Actor<u64> for PingPong {
        fn on_start(&mut self, ctx: &mut dyn Context<u64>) {
            if let Some(k) = self.initial {
                ctx.send(self.peer, k);
            }
        }
        fn on_message(&mut self, ctx: &mut dyn Context<u64>, from: NodeId, msg: u64) {
            self.received.push(msg);
            ctx.charge_cpu(SimSpan::from_micros(5));
            if msg > 0 {
                ctx.send(from, msg - 1);
            }
        }
    }

    fn pingpong_cluster() -> SimCluster<u64, PingPong> {
        let actors = vec![
            PingPong {
                peer: NodeId(1),
                initial: Some(10),
                received: vec![],
            },
            PingPong {
                peer: NodeId(0),
                initial: None,
                received: vec![],
            },
        ];
        SimCluster::new(actors, SimConfig::new(2, 1))
    }

    #[test]
    fn ping_pong_runs_to_completion() {
        let mut c = pingpong_cluster();
        c.run_to_quiescence();
        assert_eq!(c.actor(NodeId(1)).received, vec![10, 8, 6, 4, 2, 0]);
        assert_eq!(c.actor(NodeId(0)).received, vec![9, 7, 5, 3, 1]);
        assert!(c.now() > SimTime::ZERO);
        // Each delivery charged 5 µs.
        assert_eq!(c.meter(NodeId(1)).cpu_time(), SimSpan::from_micros(30));
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = pingpong_cluster();
        let mut b = pingpong_cluster();
        a.run_to_quiescence();
        b.run_to_quiescence();
        assert_eq!(a.now(), b.now());
        assert_eq!(a.events_processed(), b.events_processed());
    }

    #[test]
    fn horizon_stops_execution() {
        let mut c = pingpong_cluster();
        c.run_until(SimTime(40));
        let total: usize = c.actor(NodeId(0)).received.len() + c.actor(NodeId(1)).received.len();
        assert!(total < 11, "horizon did not stop the run");
        // Continuing finishes the exchange.
        c.run_to_quiescence();
        let total: usize = c.actor(NodeId(0)).received.len() + c.actor(NodeId(1)).received.len();
        assert_eq!(total, 11);
    }

    #[test]
    fn messages_to_down_nodes_are_dropped() {
        let faults = FaultPlan::from_outages(
            2,
            vec![Outage {
                node: NodeId(1),
                down_at: SimTime::ZERO,
                up_at: SimTime::from_secs(1000),
            }],
        );
        let cfg = SimConfig {
            faults,
            ..SimConfig::new(2, 1)
        };
        let actors = vec![
            PingPong {
                peer: NodeId(1),
                initial: Some(3),
                received: vec![],
            },
            PingPong {
                peer: NodeId(0),
                initial: None,
                received: vec![],
            },
        ];
        let mut c = SimCluster::new(actors, cfg);
        c.run_to_quiescence();
        assert!(c.actor(NodeId(1)).received.is_empty());
        assert_eq!(c.dropped_messages(), 1);
    }

    /// An actor that re-arms a periodic timer and counts fires.
    struct Ticker {
        period: SimSpan,
        fires: u32,
    }
    impl Actor<u64> for Ticker {
        fn on_start(&mut self, ctx: &mut dyn Context<u64>) {
            ctx.set_timer(self.period, 0);
        }
        fn on_message(&mut self, _: &mut dyn Context<u64>, _: NodeId, _: u64) {}
        fn on_timer(&mut self, ctx: &mut dyn Context<u64>, _: u64) {
            self.fires += 1;
            ctx.set_timer(self.period, 0);
        }
    }

    #[test]
    fn periodic_timers_fire_until_horizon() {
        let actors = vec![Ticker {
            period: SimSpan::from_secs(10),
            fires: 0,
        }];
        let mut c = SimCluster::new(actors, SimConfig::new(1, 3));
        c.run_until(SimTime::from_secs(95));
        assert_eq!(c.actor(NodeId(0)).fires, 9);
    }

    #[test]
    fn timer_during_outage_resumes_at_reboot() {
        let faults = FaultPlan::from_outages(
            1,
            vec![Outage {
                node: NodeId(0),
                down_at: SimTime::from_secs(5),
                up_at: SimTime::from_secs(100),
            }],
        );
        let cfg = SimConfig {
            faults,
            ..SimConfig::new(1, 3)
        };
        let actors = vec![Ticker {
            period: SimSpan::from_secs(10),
            fires: 0,
        }];
        let mut c = SimCluster::new(actors, cfg);
        c.run_until(SimTime::from_secs(125));
        // First fire would land at t=10s (node down) -> deferred to t=100s,
        // then fires at 100, 110, 120.
        assert_eq!(c.actor(NodeId(0)).fires, 3);
    }

    #[test]
    fn sampling_records_tracked_series() {
        let mut cfg = SimConfig::new(2, 5);
        cfg.sampling = Some(Sampling {
            interval: SimSpan::from_secs(1),
            tracked: vec![NodeId(0)],
            until: SimTime::from_secs(5),
        });
        let actors = vec![
            Ticker {
                period: SimSpan::from_secs(1),
                fires: 0,
            },
            Ticker {
                period: SimSpan::from_secs(1),
                fires: 0,
            },
        ];
        let mut c = SimCluster::new(actors, cfg);
        c.run_until(SimTime::from_secs(10));
        let series = c.series(NodeId(0)).unwrap();
        assert_eq!(series.samples.len(), 5);
        assert!(c.series(NodeId(1)).is_none());
    }

    #[test]
    fn sampler_rides_the_sampling_cadence() {
        let mut cfg = SimConfig::new(2, 5);
        let sampler = Sampler::every_until(SimSpan::from_secs(1), SimTime::from_secs(5));
        sampler.name_node(0, "master");
        cfg.sampler = sampler.clone();
        cfg.obs = Recorder::metrics_only();
        // No explicit Sampling: one is synthesized from the sampler.
        let actors = vec![
            Ticker {
                period: SimSpan::from_secs(1),
                fires: 0,
            },
            Ticker {
                period: SimSpan::from_secs(1),
                fires: 0,
            },
        ];
        let mut c = SimCluster::new(actors, cfg);
        c.run_until(SimTime::from_secs(10));
        let store = sampler.store();
        let pts = store
            .get(&obs::MetricId::new("footprint_sockets").with("node", "master"))
            .expect("footprint series for the named node");
        assert_eq!(pts.len(), 5);
        assert!(
            store.get(&obs::MetricId::new("msgs_sent")).is_some(),
            "recorder snapshot series missing"
        );
        // The synthesized sampling also feeds the classic meter series.
        assert_eq!(c.series(NodeId(0)).expect("meter series").samples.len(), 5);
    }

    #[test]
    fn ephemeral_sockets_autoclose() {
        struct Opener;
        impl Actor<u64> for Opener {
            fn on_start(&mut self, ctx: &mut dyn Context<u64>) {
                if ctx.me() == NodeId(0) {
                    ctx.open_socket_for(NodeId(1), SimSpan::from_secs(2));
                }
            }
            fn on_message(&mut self, _: &mut dyn Context<u64>, _: NodeId, _: u64) {}
        }
        let mut c = SimCluster::new(vec![Opener, Opener], SimConfig::new(2, 1));
        c.run_until(SimTime::from_secs(1));
        assert_eq!(c.meter(NodeId(0)).sockets(), 1);
        assert_eq!(c.meter(NodeId(1)).sockets(), 1);
        c.run_until(SimTime::from_secs(3));
        assert_eq!(c.meter(NodeId(0)).sockets(), 0);
        assert_eq!(c.meter(NodeId(0)).peak_sockets(), 1);
    }
}
