//! # eslurm-emu
//!
//! Cluster emulation substrate for the ESlurm reproduction.
//!
//! The paper evaluates resource managers on two physical supercomputers
//! (Tianhe-2A, 16 384 nodes; NG-Tianhe, 20K+ nodes). This crate substitutes
//! those machines with an emulated cluster:
//!
//! * [`actor`] — the actor/context programming model every daemon is
//!   written against, independent of transport;
//! * [`sim`] — a deterministic discrete-event transport that scales to
//!   tens of thousands of nodes and 24-hour virtual horizons;
//! * [`thread`] — a real-thread transport (crossbeam channels) used to
//!   validate the same actors under genuine concurrency;
//! * [`network`] — the link model (latency, transmit gaps, connection
//!   setup) representing the Tianhe proprietary interconnect;
//! * [`fault`] — ground-truth outage schedules, including a generator for
//!   the failure mix the paper observed in production;
//! * [`meter`] — per-node CPU/memory/socket accounting matching the
//!   measurements in the paper's Figs. 7 and 9 and Tables V and VI.

pub mod actor;
pub mod fault;
pub mod meter;
pub mod network;
pub mod node;
pub mod sim;
mod state;
pub mod thread;

pub use actor::{Actor, Context, Payload};
pub use fault::{FaultPlan, FaultPlanBuilder, Outage};
pub use meter::{Meter, Sample, SampleSeries};
pub use network::LatencyModel;
pub use node::NodeId;
pub use sim::{Sampling, SimCluster, SimConfig};
pub use thread::ThreadCluster;
