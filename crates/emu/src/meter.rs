//! Per-node resource meters.
//!
//! The paper evaluates resource managers by the CPU time, virtual/real
//! memory, and concurrent TCP sockets their daemons consume on the master
//! and satellite nodes (Figs. 7 and 9, Tables V and VI). The emulator
//! reproduces those measurements by charging modelled costs to a [`Meter`]
//! and sampling it at a fixed frequency (the paper samples once per second).

use simclock::{SimSpan, SimTime};

/// One sampled point of a node's resource usage.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sample {
    /// Virtual time of the sample.
    pub at: SimTime,
    /// CPU utilization over the sampling window, in `[0, 1]` per core
    /// (values above 1.0 mean more than one core busy).
    pub cpu_util: f64,
    /// Cumulative daemon CPU time.
    pub cpu_time: SimSpan,
    /// Virtual memory in bytes.
    pub virt_mem: u64,
    /// Resident (real) memory in bytes.
    pub real_mem: u64,
    /// Concurrent open sockets.
    pub sockets: u32,
}

/// Accumulates modelled resource usage for one node.
#[derive(Clone, Debug, Default)]
pub struct Meter {
    cpu_time: SimSpan,
    cpu_time_at_last_sample: SimSpan,
    last_sample_at: SimTime,
    virt_mem: u64,
    real_mem: u64,
    sockets: u32,
    peak_sockets: u32,
    peak_virt: u64,
    peak_real: u64,
    msgs_sent: u64,
    msgs_received: u64,
}

impl Meter {
    /// A zeroed meter.
    pub fn new() -> Self {
        Meter::default()
    }

    /// Assemble a meter from raw component values. Used by the
    /// struct-of-arrays node store in `sim` to materialize `Meter`
    /// snapshots without keeping one `Meter` struct per node.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_raw(
        cpu_time: SimSpan,
        cpu_time_at_last_sample: SimSpan,
        last_sample_at: SimTime,
        virt_mem: u64,
        real_mem: u64,
        sockets: u32,
        peak_sockets: u32,
        peak_virt: u64,
        peak_real: u64,
        msgs_sent: u64,
        msgs_received: u64,
    ) -> Meter {
        Meter {
            cpu_time,
            cpu_time_at_last_sample,
            last_sample_at,
            virt_mem,
            real_mem,
            sockets,
            peak_sockets,
            peak_virt,
            peak_real,
            msgs_sent,
            msgs_received,
        }
    }

    /// Charge `span` of CPU time to the daemon.
    pub fn charge_cpu(&mut self, span: SimSpan) {
        self.cpu_time += span;
    }

    /// Adjust virtual memory by `delta` bytes (saturating at zero).
    pub fn alloc_virt(&mut self, delta: i64) {
        self.virt_mem = apply(self.virt_mem, delta);
        self.peak_virt = self.peak_virt.max(self.virt_mem);
    }

    /// Adjust resident memory by `delta` bytes (saturating at zero).
    pub fn alloc_real(&mut self, delta: i64) {
        self.real_mem = apply(self.real_mem, delta);
        self.peak_real = self.peak_real.max(self.real_mem);
    }

    /// Record a socket being opened.
    pub fn open_socket(&mut self) {
        self.sockets += 1;
        self.peak_sockets = self.peak_sockets.max(self.sockets);
    }

    /// Record a socket being closed. Closing with none open is a modelling
    /// bug, caught in debug builds and ignored in release.
    pub fn close_socket(&mut self) {
        debug_assert!(self.sockets > 0, "closing a socket that was never opened");
        self.sockets = self.sockets.saturating_sub(1);
    }

    /// Count one sent message.
    pub fn count_sent(&mut self) {
        self.msgs_sent += 1;
    }

    /// Count one received message.
    pub fn count_received(&mut self) {
        self.msgs_received += 1;
    }

    /// Cumulative CPU time.
    pub fn cpu_time(&self) -> SimSpan {
        self.cpu_time
    }

    /// Current virtual memory, bytes.
    pub fn virt_mem(&self) -> u64 {
        self.virt_mem
    }

    /// Current resident memory, bytes.
    pub fn real_mem(&self) -> u64 {
        self.real_mem
    }

    /// Current open sockets.
    pub fn sockets(&self) -> u32 {
        self.sockets
    }

    /// High-water mark of concurrent sockets.
    pub fn peak_sockets(&self) -> u32 {
        self.peak_sockets
    }

    /// High-water marks of memory usage.
    pub fn peak_mem(&self) -> (u64, u64) {
        (self.peak_virt, self.peak_real)
    }

    /// Messages sent / received so far.
    pub fn msg_counts(&self) -> (u64, u64) {
        (self.msgs_sent, self.msgs_received)
    }

    /// Take a sample at time `now`, computing CPU utilization over the
    /// window since the previous sample.
    pub fn sample(&mut self, now: SimTime) -> Sample {
        let window = now - self.last_sample_at;
        let used = self.cpu_time - self.cpu_time_at_last_sample;
        let cpu_util = if window.as_micros() == 0 {
            0.0
        } else {
            used.as_secs_f64() / window.as_secs_f64()
        };
        self.last_sample_at = now;
        self.cpu_time_at_last_sample = self.cpu_time;
        Sample {
            at: now,
            cpu_util,
            cpu_time: self.cpu_time,
            virt_mem: self.virt_mem,
            real_mem: self.real_mem,
            sockets: self.sockets,
        }
    }
}

pub(crate) fn apply(cur: u64, delta: i64) -> u64 {
    if delta >= 0 {
        cur + delta as u64
    } else {
        cur.saturating_sub(delta.unsigned_abs())
    }
}

/// A recorded time series of samples for one node, plus summary helpers.
#[derive(Clone, Debug, Default)]
pub struct SampleSeries {
    /// The raw samples, in time order.
    pub samples: Vec<Sample>,
}

impl SampleSeries {
    /// Push one sample.
    pub fn push(&mut self, s: Sample) {
        self.samples.push(s);
    }

    /// Mean of an extracted metric across all samples (0.0 when empty).
    pub fn mean<F: Fn(&Sample) -> f64>(&self, f: F) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(&f).sum::<f64>() / self.samples.len() as f64
    }

    /// Max of an extracted metric across all samples (0.0 when empty).
    pub fn max<F: Fn(&Sample) -> f64>(&self, f: F) -> f64 {
        self.samples.iter().map(&f).fold(0.0, f64::max)
    }

    /// Final cumulative CPU time in the series.
    pub fn final_cpu_time(&self) -> SimSpan {
        self.samples
            .last()
            .map(|s| s.cpu_time)
            .unwrap_or(SimSpan::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_accumulates_and_util_is_windowed() {
        let mut m = Meter::new();
        m.charge_cpu(SimSpan::from_millis(500));
        let s1 = m.sample(SimTime::from_secs(1));
        assert!((s1.cpu_util - 0.5).abs() < 1e-9);
        // No work in the second window.
        let s2 = m.sample(SimTime::from_secs(2));
        assert_eq!(s2.cpu_util, 0.0);
        assert_eq!(s2.cpu_time, SimSpan::from_millis(500));
    }

    #[test]
    fn memory_deltas_saturate() {
        let mut m = Meter::new();
        m.alloc_virt(1000);
        m.alloc_virt(-400);
        assert_eq!(m.virt_mem(), 600);
        m.alloc_virt(-10_000);
        assert_eq!(m.virt_mem(), 0);
        m.alloc_real(256);
        assert_eq!(m.real_mem(), 256);
        assert_eq!(m.peak_mem(), (1000, 256));
    }

    #[test]
    fn socket_peak_tracks_high_water() {
        let mut m = Meter::new();
        for _ in 0..5 {
            m.open_socket();
        }
        m.close_socket();
        m.close_socket();
        assert_eq!(m.sockets(), 3);
        assert_eq!(m.peak_sockets(), 5);
    }

    #[test]
    fn zero_window_sample_has_zero_util() {
        let mut m = Meter::new();
        m.charge_cpu(SimSpan::from_millis(1));
        let s = m.sample(SimTime::ZERO);
        assert_eq!(s.cpu_util, 0.0);
    }

    #[test]
    fn series_summaries() {
        let mut series = SampleSeries::default();
        let mut m = Meter::new();
        m.alloc_real(100);
        series.push(m.sample(SimTime::from_secs(1)));
        m.alloc_real(300);
        m.charge_cpu(SimSpan::from_secs(1));
        series.push(m.sample(SimTime::from_secs(2)));
        assert_eq!(series.mean(|s| s.real_mem as f64), 250.0);
        assert_eq!(series.max(|s| s.real_mem as f64), 400.0);
        assert_eq!(series.final_cpu_time(), SimSpan::from_secs(1));
    }

    #[test]
    fn empty_series_is_zero() {
        let s = SampleSeries::default();
        assert_eq!(s.mean(|s| s.sockets as f64), 0.0);
        assert_eq!(s.max(|s| s.sockets as f64), 0.0);
        assert_eq!(s.final_cpu_time(), SimSpan::ZERO);
    }
}
