//! Node identity.

use std::fmt;

/// Identifier of an emulated node.
///
/// Node 0 is conventionally the master node; the roles of the remaining ids
/// are assigned by the resource-manager layer (satellites, then compute
/// nodes). A `u32` is deliberate: clusters in the paper reach 20K+ nodes and
/// node ids appear in every message and tree, so keeping them 4 bytes keeps
/// node lists and trees compact.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Conventional id of the master node.
    pub const MASTER: NodeId = NodeId(0);

    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_basics() {
        let n = NodeId(17);
        assert_eq!(n.index(), 17);
        assert_eq!(format!("{n}"), "n17");
        assert_eq!(NodeId::from(17u32), n);
        assert!(NodeId(3) < NodeId(4));
        assert_eq!(NodeId::MASTER, NodeId(0));
    }
}
