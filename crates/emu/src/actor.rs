//! The actor programming model shared by both transports.
//!
//! Every daemon in the reproduction (master, satellite, slave — and the
//! centralized baselines) is written once as an [`Actor`] against the
//! [`Context`] trait, and can then run either on the deterministic
//! discrete-event simulator ([`crate::sim::SimCluster`], used for the
//! 4K–20K-node experiments) or on real threads with crossbeam channels
//! ([`crate::thread::ThreadCluster`], used to validate the protocol logic
//! end-to-end at small scale).

use crate::node::NodeId;
use obs::{FlowKind, TraceContext};
use rand::rngs::StdRng;
use simclock::{SimSpan, SimTime};

/// A message payload that can travel between nodes.
pub trait Payload: Clone + Send + std::fmt::Debug + 'static {
    /// Modelled wire size in bytes (drives latency and transmit gaps).
    fn size_bytes(&self) -> u32 {
        64
    }
}

/// The environment an actor runs in: time, identity, messaging, timers,
/// and resource accounting.
pub trait Context<M: Payload> {
    /// Current virtual time.
    fn now(&self) -> SimTime;

    /// The id of the node this actor runs on.
    fn me(&self) -> NodeId;

    /// Send `msg` to `to`. Delivery is asynchronous; if the destination is
    /// down at delivery time, the message is silently dropped (protocols
    /// discover failures through timeouts, as over TCP).
    fn send(&mut self, to: NodeId, msg: M);

    /// Arm a one-shot timer that fires `after` from now, delivering `token`
    /// to [`Actor::on_timer`]. Tokens are actor-defined; stale timers are
    /// usually ignored via generation counters in the actor state.
    fn set_timer(&mut self, after: SimSpan, token: u64);

    /// Charge CPU time to this node's daemon meter.
    fn charge_cpu(&mut self, span: SimSpan);

    /// Adjust this node's virtual memory by `delta` bytes.
    fn alloc_virt(&mut self, delta: i64);

    /// Adjust this node's resident memory by `delta` bytes.
    fn alloc_real(&mut self, delta: i64);

    /// Record a connection opened between this node and `peer` (both ends'
    /// socket counts increase).
    fn open_socket(&mut self, peer: NodeId);

    /// Record a connection to `peer` being closed.
    fn close_socket(&mut self, peer: NodeId);

    /// Open a connection to `peer` that the transport closes automatically
    /// after `dur` (models ephemeral request/response connections).
    fn open_socket_for(&mut self, peer: NodeId, dur: SimSpan);

    /// This node's deterministic RNG stream.
    fn rng(&mut self) -> &mut StdRng;

    /// Ground-truth liveness of `node`. Only the monitoring substrate may
    /// consult this (it stands in for the hardware diagnostic network);
    /// RM protocol logic must rely on timeouts instead.
    fn is_up(&self, node: NodeId) -> bool;

    /// Start a causal trace of `flow` rooted here and make it current:
    /// every `send` until the end of this handler (or until
    /// [`Context::trace_adopt`]) carries a child context of it. Returns
    /// `None` — and records nothing — unless the transport's recorder has
    /// causal tracing on, so un-traced runs stay bit-identical.
    fn trace_begin(&mut self, flow: FlowKind) -> Option<TraceContext> {
        let _ = flow;
        None
    }

    /// The trace context current for this handler, if any: the context the
    /// delivered message carried, or the one a `trace_begin`/`trace_adopt`
    /// installed. Actors stash this in their state to resume the trace
    /// from a later timer handler.
    fn trace_current(&self) -> Option<TraceContext> {
        None
    }

    /// Make `ctx` current (or clear it with `None`): subsequent sends link
    /// as children of `ctx.span`. Used by timer handlers continuing a flow
    /// whose context was stashed when the state was created.
    fn trace_adopt(&mut self, ctx: Option<TraceContext>) {
        let _ = ctx;
    }

    /// Record that the current flow sat waiting on a timeout/retry from
    /// `start` until now under `ctx`'s span — the critical path relabels
    /// the gap as backoff instead of unexplained idle time.
    fn trace_backoff(&mut self, ctx: &TraceContext, start: SimTime) {
        let _ = (ctx, start);
    }
}

/// A state machine running on one emulated node.
#[allow(unused_variables)]
pub trait Actor<M: Payload>: Send {
    /// Called once at simulation start (time zero), before any messages.
    fn on_start(&mut self, ctx: &mut dyn Context<M>) {}

    /// Called when a message from `from` is delivered.
    fn on_message(&mut self, ctx: &mut dyn Context<M>, from: NodeId, msg: M);

    /// Called when a timer armed with [`Context::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut dyn Context<M>, token: u64) {}
}

impl Payload for () {}

impl Payload for u64 {
    fn size_bytes(&self) -> u32 {
        8
    }
}

impl Payload for String {
    fn size_bytes(&self) -> u32 {
        self.len() as u32
    }
}
