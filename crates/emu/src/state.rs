//! Struct-of-arrays node state for the DES engine.
//!
//! The serial engine kept one `Meter` struct, one `tx_free` slot and one
//! RNG per node in parallel `Vec`s of structs. At a million nodes the hot
//! loop touches only one or two fields per event (a CPU charge, a socket
//! count, the sender's `tx_free`), so a struct-of-arrays layout keeps each
//! of those accesses on a densely packed cache line instead of striding
//! over ~300-byte node records. Each shard of the sharded engine owns one
//! [`NodeStore`] covering exactly its nodes, indexed by *local* index; the
//! engine maps `NodeId` → `(shard, local)` once per event.
//!
//! RNG streams are derived from the *global* node id, so the draws a node
//! makes are identical no matter which shard hosts it.

use crate::meter::{apply, Meter, Sample};
use rand::rngs::StdRng;
use simclock::rng::stream_rng;
use simclock::{SimSpan, SimTime};

/// Per-node engine state for one shard, split into parallel arrays.
pub(crate) struct NodeStore {
    cpu_time: Vec<SimSpan>,
    cpu_at_sample: Vec<SimSpan>,
    last_sample: Vec<SimTime>,
    virt: Vec<u64>,
    real: Vec<u64>,
    peak_virt: Vec<u64>,
    peak_real: Vec<u64>,
    sockets: Vec<u32>,
    peak_sockets: Vec<u32>,
    sent: Vec<u64>,
    recv: Vec<u64>,
    /// Time the node's NIC is next free to transmit.
    tx_free: Vec<SimTime>,
    /// Per-node event creation counter: the `seq` of the node's lane.
    next_seq: Vec<u64>,
    rngs: Vec<StdRng>,
}

impl NodeStore {
    /// A store hosting the nodes with the given *global* ids; local index
    /// `i` corresponds to `ids[i]`.
    pub fn new(seed: u64, ids: &[u32]) -> Self {
        let n = ids.len();
        NodeStore {
            cpu_time: vec![SimSpan::ZERO; n],
            cpu_at_sample: vec![SimSpan::ZERO; n],
            last_sample: vec![SimTime::ZERO; n],
            virt: vec![0; n],
            real: vec![0; n],
            peak_virt: vec![0; n],
            peak_real: vec![0; n],
            sockets: vec![0; n],
            peak_sockets: vec![0; n],
            sent: vec![0; n],
            recv: vec![0; n],
            tx_free: vec![SimTime::ZERO; n],
            next_seq: vec![0; n],
            rngs: ids.iter().map(|&id| stream_rng(seed, id as u64)).collect(),
        }
    }

    pub fn charge_cpu(&mut self, i: usize, span: SimSpan) {
        self.cpu_time[i] += span;
    }

    pub fn cpu_time(&self, i: usize) -> SimSpan {
        self.cpu_time[i]
    }

    pub fn alloc_virt(&mut self, i: usize, delta: i64) {
        self.virt[i] = apply(self.virt[i], delta);
        self.peak_virt[i] = self.peak_virt[i].max(self.virt[i]);
    }

    pub fn alloc_real(&mut self, i: usize, delta: i64) {
        self.real[i] = apply(self.real[i], delta);
        self.peak_real[i] = self.peak_real[i].max(self.real[i]);
    }

    pub fn open_socket(&mut self, i: usize) {
        self.sockets[i] += 1;
        self.peak_sockets[i] = self.peak_sockets[i].max(self.sockets[i]);
    }

    pub fn close_socket(&mut self, i: usize) {
        debug_assert!(
            self.sockets[i] > 0,
            "closing a socket that was never opened"
        );
        self.sockets[i] = self.sockets[i].saturating_sub(1);
    }

    pub fn count_sent(&mut self, i: usize) {
        self.sent[i] += 1;
    }

    pub fn count_received(&mut self, i: usize) {
        self.recv[i] += 1;
    }

    pub fn tx_free(&self, i: usize) -> SimTime {
        self.tx_free[i]
    }

    pub fn set_tx_free(&mut self, i: usize, t: SimTime) {
        self.tx_free[i] = t;
    }

    /// Stamp the node's next event sequence number (post-increment).
    pub fn take_seq(&mut self, i: usize) -> u64 {
        let s = self.next_seq[i];
        self.next_seq[i] += 1;
        s
    }

    pub fn rng(&mut self, i: usize) -> &mut StdRng {
        &mut self.rngs[i]
    }

    /// Materialize a [`Meter`] snapshot of node `i` (by value).
    pub fn meter(&self, i: usize) -> Meter {
        Meter::from_raw(
            self.cpu_time[i],
            self.cpu_at_sample[i],
            self.last_sample[i],
            self.virt[i],
            self.real[i],
            self.sockets[i],
            self.peak_sockets[i],
            self.peak_virt[i],
            self.peak_real[i],
            self.sent[i],
            self.recv[i],
        )
    }

    /// Take a footprint sample of node `i`, with the same windowed-CPU
    /// semantics as [`Meter::sample`].
    pub fn sample(&mut self, i: usize, now: SimTime) -> Sample {
        let window = now - self.last_sample[i];
        let used = self.cpu_time[i] - self.cpu_at_sample[i];
        let cpu_util = if window.as_micros() == 0 {
            0.0
        } else {
            used.as_secs_f64() / window.as_secs_f64()
        };
        self.last_sample[i] = now;
        self.cpu_at_sample[i] = self.cpu_time[i];
        Sample {
            at: now,
            cpu_util,
            cpu_time: self.cpu_time[i],
            virt_mem: self.virt[i],
            real_mem: self.real[i],
            sockets: self.sockets[i],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_matches_meter_semantics() {
        let mut store = NodeStore::new(1, &[5, 9]);
        let mut m = Meter::new();
        for target in [0usize, 1] {
            store.charge_cpu(target, SimSpan::from_millis(500));
            store.alloc_virt(target, 1000);
            store.alloc_virt(target, -400);
            store.alloc_real(target, 256);
            store.open_socket(target);
            store.open_socket(target);
            store.close_socket(target);
            store.count_sent(target);
            store.count_received(target);
        }
        m.charge_cpu(SimSpan::from_millis(500));
        m.alloc_virt(1000);
        m.alloc_virt(-400);
        m.alloc_real(256);
        m.open_socket();
        m.open_socket();
        m.close_socket();
        m.count_sent();
        m.count_received();
        let s_store = store.sample(0, SimTime::from_secs(1));
        let s_meter = m.sample(SimTime::from_secs(1));
        assert_eq!(s_store, s_meter);
        let snap = store.meter(1);
        assert_eq!(snap.cpu_time(), m.cpu_time());
        assert_eq!(snap.virt_mem(), m.virt_mem());
        assert_eq!(snap.peak_mem(), m.peak_mem());
        assert_eq!(snap.sockets(), m.sockets());
        assert_eq!(snap.peak_sockets(), m.peak_sockets());
        assert_eq!(snap.msg_counts(), m.msg_counts());
    }

    #[test]
    fn rng_streams_follow_global_ids() {
        let mut store = NodeStore::new(42, &[7]);
        let mut reference = stream_rng(42, 7);
        use rand::RngExt;
        assert_eq!(store.rng(0).random::<u64>(), reference.random::<u64>());
    }

    #[test]
    fn seq_counter_is_per_node() {
        let mut store = NodeStore::new(1, &[0, 1]);
        assert_eq!(store.take_seq(0), 0);
        assert_eq!(store.take_seq(0), 1);
        assert_eq!(store.take_seq(1), 0);
    }
}
