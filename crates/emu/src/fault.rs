//! Fault injection: scheduled node outages.
//!
//! A [`FaultPlan`] is a ground-truth schedule of node down/up intervals.
//! Messages to a node that is down at delivery time are dropped, which is
//! how failures surface to the protocols (timeouts). The plan also feeds the
//! monitoring substrate, which turns upcoming outages into (noisy) alerts
//! for the FP-Tree's failure predictor.
//!
//! [`FaultPlanBuilder::tianhe_like`] mimics the failure mix the paper
//! reports from ten days of production: many small events (1–8 nodes) plus
//! one large maintenance event (600+ nodes at once).

use crate::node::NodeId;
use rand::RngExt;
use simclock::rng::stream_rng;
use simclock::{SimSpan, SimTime};

/// One outage of one node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Outage {
    /// The affected node.
    pub node: NodeId,
    /// When the node goes down.
    pub down_at: SimTime,
    /// When the node comes back (may be past the simulation horizon).
    pub up_at: SimTime,
}

/// A schedule of node outages, queryable by `(node, time)`.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// All outages, sorted by `down_at`.
    outages: Vec<Outage>,
    /// Per-node outage indices for fast lookup.
    by_node: Vec<Vec<u32>>,
}

impl FaultPlan {
    /// A plan with no failures for `n` nodes.
    pub fn none(n: usize) -> Self {
        FaultPlan {
            outages: Vec::new(),
            by_node: vec![Vec::new(); n],
        }
    }

    /// Build from an explicit outage list for `n` nodes.
    pub fn from_outages(n: usize, mut outages: Vec<Outage>) -> Self {
        outages.sort_by_key(|o| (o.down_at, o.node));
        let mut by_node = vec![Vec::new(); n];
        for (i, o) in outages.iter().enumerate() {
            assert!(o.node.index() < n, "outage for node outside cluster");
            assert!(o.up_at > o.down_at, "outage must have positive duration");
            by_node[o.node.index()].push(i as u32);
        }
        FaultPlan { outages, by_node }
    }

    /// Whether `node` is up at time `t`.
    pub fn is_up(&self, node: NodeId, t: SimTime) -> bool {
        self.by_node
            .get(node.index())
            .map(|idxs| {
                idxs.iter().all(|&i| {
                    let o = &self.outages[i as usize];
                    t < o.down_at || t >= o.up_at
                })
            })
            .unwrap_or(true)
    }

    /// All outages, sorted by start time.
    pub fn outages(&self) -> &[Outage] {
        &self.outages
    }

    /// The set of nodes that are down at time `t`.
    pub fn down_at(&self, t: SimTime) -> Vec<NodeId> {
        let mut down: Vec<NodeId> = self
            .outages
            .iter()
            .filter(|o| t >= o.down_at && t < o.up_at)
            .map(|o| o.node)
            .collect();
        down.sort();
        down.dedup();
        down
    }

    /// Nodes whose outage starts within `(t, t + horizon]` — the information
    /// an ideal monitoring system could know in advance.
    pub fn failing_within(&self, t: SimTime, horizon: SimSpan) -> Vec<NodeId> {
        let end = t + horizon;
        let mut v: Vec<NodeId> = self
            .outages
            .iter()
            .filter(|o| o.down_at > t && o.down_at <= end)
            .map(|o| o.node)
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// Number of nodes in the plan's cluster.
    pub fn cluster_size(&self) -> usize {
        self.by_node.len()
    }

    /// If `node` is down at `t`, the time it next comes back up; `None` when
    /// the node is up at `t`.
    pub fn next_up_after(&self, node: NodeId, t: SimTime) -> Option<SimTime> {
        self.by_node.get(node.index()).and_then(|idxs| {
            idxs.iter()
                .map(|&i| &self.outages[i as usize])
                .filter(|o| t >= o.down_at && t < o.up_at)
                .map(|o| o.up_at)
                .max()
        })
    }
}

/// Randomized construction of realistic fault plans.
#[derive(Clone, Debug)]
pub struct FaultPlanBuilder {
    n: usize,
    seed: u64,
    horizon: SimSpan,
    small_events: usize,
    small_event_max_nodes: usize,
    large_events: usize,
    large_event_nodes: usize,
    mean_outage: SimSpan,
}

impl FaultPlanBuilder {
    /// Start a builder for a cluster of `n` nodes over `horizon` of virtual
    /// time, seeded for reproducibility.
    pub fn new(n: usize, horizon: SimSpan, seed: u64) -> Self {
        FaultPlanBuilder {
            n,
            seed,
            horizon,
            small_events: 0,
            small_event_max_nodes: 8,
            large_events: 0,
            large_event_nodes: 0,
            mean_outage: SimSpan::from_secs(3600),
        }
    }

    /// Schedule `count` small failure events of 1..=`max_nodes` nodes each.
    pub fn small_events(mut self, count: usize, max_nodes: usize) -> Self {
        self.small_events = count;
        self.small_event_max_nodes = max_nodes.max(1);
        self
    }

    /// Schedule `count` large events taking down `nodes` nodes at once
    /// (hardware replacement / maintenance).
    pub fn large_events(mut self, count: usize, nodes: usize) -> Self {
        self.large_events = count;
        self.large_event_nodes = nodes;
        self
    }

    /// Mean outage duration (exponentially distributed).
    pub fn mean_outage(mut self, d: SimSpan) -> Self {
        self.mean_outage = d;
        self
    }

    /// The failure mix of the paper's ten-day 4K-node deployment, scaled to
    /// the given cluster size and horizon: 28 small events on ≤8 nodes plus
    /// one 600-node maintenance event per 10 days per 4 096 nodes.
    pub fn tianhe_like(n: usize, horizon: SimSpan, seed: u64) -> Self {
        let scale = (n as f64 / 4096.0) * (horizon.as_secs_f64() / (10.0 * 86_400.0));
        let small = (28.0 * scale).round().max(1.0) as usize;
        let large = if scale >= 0.5 { 1 } else { 0 };
        FaultPlanBuilder::new(n, horizon, seed)
            .small_events(small, 8)
            .large_events(large, ((600.0 * n as f64 / 4096.0) as usize).min(n / 4))
            .mean_outage(SimSpan::from_secs(2 * 3600))
    }

    /// Materialize the plan.
    pub fn build(self) -> FaultPlan {
        let mut rng = stream_rng(self.seed, 0xFA);
        let mut outages = Vec::new();
        let horizon_us = self.horizon.as_micros().max(1);
        let push_event = |rng: &mut rand::rngs::StdRng, nodes: usize, out: &mut Vec<Outage>| {
            let at = SimTime(rng.random_range(0..horizon_us));
            // Failed nodes cluster physically (same board/chassis): pick a
            // contiguous id range starting at a random point.
            let start = rng.random_range(0..self.n as u32);
            let dur =
                simclock::rng::exponential(rng, 1.0 / self.mean_outage.as_secs_f64().max(1.0));
            let dur = SimSpan::from_secs_f64(dur.max(60.0));
            for k in 0..nodes {
                let node = NodeId((start + k as u32) % self.n as u32);
                out.push(Outage {
                    node,
                    down_at: at,
                    up_at: at + dur,
                });
            }
        };
        for _ in 0..self.small_events {
            let nodes = rng.random_range(1..=self.small_event_max_nodes);
            push_event(&mut rng, nodes, &mut outages);
        }
        for _ in 0..self.large_events {
            push_event(&mut rng, self.large_event_nodes, &mut outages);
        }
        FaultPlan::from_outages(self.n, outages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_everything_up() {
        let p = FaultPlan::none(10);
        assert!(p.is_up(NodeId(3), SimTime::from_secs(100)));
        assert!(p.down_at(SimTime::from_secs(5)).is_empty());
    }

    #[test]
    fn outage_window_respected() {
        let p = FaultPlan::from_outages(
            4,
            vec![Outage {
                node: NodeId(2),
                down_at: SimTime::from_secs(10),
                up_at: SimTime::from_secs(20),
            }],
        );
        assert!(p.is_up(NodeId(2), SimTime::from_secs(9)));
        assert!(!p.is_up(NodeId(2), SimTime::from_secs(10)));
        assert!(!p.is_up(NodeId(2), SimTime::from_secs(19)));
        assert!(p.is_up(NodeId(2), SimTime::from_secs(20)));
        assert!(p.is_up(NodeId(1), SimTime::from_secs(15)));
        assert_eq!(p.down_at(SimTime::from_secs(15)), vec![NodeId(2)]);
    }

    #[test]
    fn failing_within_horizon() {
        let p = FaultPlan::from_outages(
            4,
            vec![
                Outage {
                    node: NodeId(1),
                    down_at: SimTime::from_secs(50),
                    up_at: SimTime::from_secs(60),
                },
                Outage {
                    node: NodeId(3),
                    down_at: SimTime::from_secs(500),
                    up_at: SimTime::from_secs(600),
                },
            ],
        );
        let soon = p.failing_within(SimTime::from_secs(40), SimSpan::from_secs(30));
        assert_eq!(soon, vec![NodeId(1)]);
    }

    #[test]
    fn builder_is_deterministic_and_in_range() {
        let h = SimSpan::from_hours(24);
        let a = FaultPlanBuilder::new(100, h, 9).small_events(10, 4).build();
        let b = FaultPlanBuilder::new(100, h, 9).small_events(10, 4).build();
        assert_eq!(a.outages(), b.outages());
        assert!(!a.outages().is_empty());
        for o in a.outages() {
            assert!(o.node.index() < 100);
            assert!(o.down_at.as_micros() < h.as_micros());
            assert!(o.up_at > o.down_at);
        }
    }

    #[test]
    fn tianhe_like_has_large_event_at_scale() {
        let p = FaultPlanBuilder::tianhe_like(4096, SimSpan::from_hours(240), 7).build();
        // 28 small events plus one ~600-node event => >600 outages.
        assert!(p.outages().len() > 600, "got {}", p.outages().len());
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn zero_duration_outage_rejected() {
        let t = SimTime::from_secs(5);
        FaultPlan::from_outages(
            2,
            vec![Outage {
                node: NodeId(0),
                down_at: t,
                up_at: t,
            }],
        );
    }
}
