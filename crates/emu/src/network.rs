//! Network latency and transmit-serialization model.
//!
//! Both Tianhe systems use a proprietary interconnect: 25 Gbps per lane,
//! four lanes per port. At that speed the dominant cost of RM control
//! traffic (small messages) is per-message latency and per-connection setup,
//! not bandwidth; we model
//!
//! * a base one-way latency per hop,
//! * a per-KiB serialization cost,
//! * a per-message *transmit gap* at the sender NIC — consecutive sends from
//!   one node are spaced by this gap, which is what makes a 4 000-way star
//!   broadcast slow compared to a tree even though each individual message
//!   is fast, and
//! * optional deterministic jitter drawn from the simulation RNG.

use rand::rngs::StdRng;
use rand::RngExt;
use simclock::SimSpan;

/// Parameters of the link model.
#[derive(Clone, Debug)]
pub struct LatencyModel {
    /// Fixed one-way propagation + protocol latency per message.
    pub base: SimSpan,
    /// Additional latency per KiB of payload.
    pub per_kib: SimSpan,
    /// Sender-side serialization gap between consecutive messages.
    pub send_gap: SimSpan,
    /// Connection-establishment cost charged when a message opens a new
    /// connection (three-way handshake).
    pub connect: SimSpan,
    /// Jitter as a fraction of the computed latency (`0.1` = ±10 %).
    pub jitter_frac: f64,
}

impl Default for LatencyModel {
    /// Defaults representative of the Tianhe interconnect for control
    /// traffic: 30 µs base latency, ~3 µs/KiB, 8 µs transmit gap, 150 µs
    /// TCP connection setup, ±10 % jitter.
    fn default() -> Self {
        LatencyModel {
            base: SimSpan::from_micros(30),
            per_kib: SimSpan::from_micros(3),
            send_gap: SimSpan::from_micros(8),
            connect: SimSpan::from_micros(150),
            jitter_frac: 0.10,
        }
    }
}

impl LatencyModel {
    /// A zero-jitter copy (useful for analytic unit tests).
    pub fn deterministic(mut self) -> Self {
        self.jitter_frac = 0.0;
        self
    }

    /// One-way latency for a message of `size_bytes`, excluding the transmit
    /// gap and connection setup.
    pub fn latency(&self, size_bytes: u32, rng: &mut StdRng) -> SimSpan {
        let kib = size_bytes as f64 / 1024.0;
        let raw = self.base + self.per_kib.mul_f64(kib);
        self.jitter(raw, rng)
    }

    /// Transmit gap the sender NIC needs before the next send.
    pub fn tx_gap(&self, size_bytes: u32) -> SimSpan {
        // Gap grows mildly with message size (DMA + packetization).
        self.send_gap + self.per_kib.mul_f64(size_bytes as f64 / 1024.0 / 4.0)
    }

    /// Connection establishment latency.
    pub fn connect_cost(&self, rng: &mut StdRng) -> SimSpan {
        self.jitter(self.connect, rng)
    }

    /// Conservative lower bound on the send→deliver delay of any message:
    /// the zero-size transmit gap plus the smallest latency the jitter can
    /// produce, less one microsecond of rounding slack.
    ///
    /// The sharded engine in `emu::sim` uses this as its conservative
    /// synchronization window (lookahead): a message sent at time `t` is
    /// delivered strictly after `t + min_hop()`, so shards may process
    /// events within a window of this width concurrently without a
    /// cross-shard message ever arriving inside the window that produced
    /// it. With the default Tianhe-like parameters this is 34 µs.
    pub fn min_hop(&self) -> SimSpan {
        let frac = self.jitter_frac.clamp(0.0, 1.0);
        let min_latency = (self.base.as_micros() as f64 * (1.0 - frac)).floor() as u64;
        SimSpan::from_micros((self.tx_gap(0).as_micros() + min_latency).saturating_sub(1))
    }

    fn jitter(&self, raw: SimSpan, rng: &mut StdRng) -> SimSpan {
        if self.jitter_frac == 0.0 {
            return raw;
        }
        let k = 1.0 + self.jitter_frac * (2.0 * rng.random::<f64>() - 1.0);
        raw.mul_f64(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simclock::rng::stream_rng;

    #[test]
    fn deterministic_latency_is_base_plus_size() {
        let m = LatencyModel::default().deterministic();
        let mut rng = stream_rng(1, 0);
        let small = m.latency(0, &mut rng);
        let big = m.latency(10 * 1024, &mut rng);
        assert_eq!(small, SimSpan::from_micros(30));
        assert_eq!(big, SimSpan::from_micros(60));
    }

    #[test]
    fn jitter_is_bounded() {
        let m = LatencyModel::default();
        let mut rng = stream_rng(2, 0);
        for _ in 0..1000 {
            let l = m.latency(1024, &mut rng).as_micros() as f64;
            let nominal = 33.0;
            assert!(l >= nominal * 0.89 && l <= nominal * 1.11, "latency {l}");
        }
    }

    #[test]
    fn tx_gap_grows_with_size() {
        let m = LatencyModel::default();
        assert!(m.tx_gap(64 * 1024) > m.tx_gap(64));
    }

    #[test]
    fn min_hop_lower_bounds_every_draw() {
        let m = LatencyModel::default();
        assert_eq!(m.min_hop(), SimSpan::from_micros(34));
        assert_eq!(
            LatencyModel::default().deterministic().min_hop(),
            SimSpan::from_micros(37)
        );
        let mut rng = stream_rng(7, 0);
        for size in [0u32, 64, 1024, 64 * 1024] {
            for _ in 0..500 {
                let hop = m.tx_gap(size) + m.latency(size, &mut rng);
                assert!(
                    hop > m.min_hop(),
                    "draw {hop:?} not strictly above min_hop {:?}",
                    m.min_hop()
                );
            }
        }
    }

    #[test]
    fn same_seed_same_jitter() {
        let m = LatencyModel::default();
        let mut a = stream_rng(3, 0);
        let mut b = stream_rng(3, 0);
        for _ in 0..50 {
            assert_eq!(m.latency(512, &mut a), m.latency(512, &mut b));
        }
    }
}
