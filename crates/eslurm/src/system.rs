//! Whole-system wiring: build an emulated ESlurm cluster (master +
//! satellites + compute nodes) on the DES, inject job streams, and read
//! back records and meters.
//!
//! Node layout convention: node 0 is the master, nodes `1..=m` are the
//! satellites, and nodes `m+1..` are compute (slave) nodes.

use crate::config::EslurmConfig;
use crate::master::EslurmMaster;
use crate::satellite::SatelliteDaemon;
use emu::{Actor, Context, FaultPlan, NodeId, Sampling, SimCluster, SimConfig};
use monitoring::FailurePredictor;
use obs::{tag_scope, EngineProfiler, MemProfiler, MemTag, Recorder, Sampler, SloEngine};
use rm::proto::{NodeSlice, RmMsg};
use rm::slave::{SlaveConfig, SlaveDaemon, SlaveHeartbeat};
use sched::prelude::*;
use simclock::{SimSpan, SimTime};
use std::sync::{Arc, Mutex};

/// A node of an ESlurm cluster.
#[allow(clippy::large_enum_variant)] // one value per emulated node; size is fine
pub enum EslurmNode {
    /// The master daemon (node 0).
    Master(EslurmMaster),
    /// A satellite daemon.
    Satellite(SatelliteDaemon),
    /// A compute-node daemon.
    Slave(SlaveDaemon),
}

impl Actor<RmMsg> for EslurmNode {
    // Master and satellite FSMs are the management stack — their handlers
    // run under their own heap tag. Compute-node daemons keep the ambient
    // tag (the engine's `des-shard{n}` scope), so engine-vs-stack cost
    // stays separable in `mem-report`.
    fn on_start(&mut self, ctx: &mut dyn Context<RmMsg>) {
        match self {
            EslurmNode::Master(m) => {
                let _mem = tag_scope(MemTag::Master);
                m.on_start(ctx)
            }
            EslurmNode::Satellite(s) => {
                let _mem = tag_scope(MemTag::Satellite);
                s.on_start(ctx)
            }
            EslurmNode::Slave(s) => s.on_start(ctx),
        }
    }
    fn on_message(&mut self, ctx: &mut dyn Context<RmMsg>, from: NodeId, msg: RmMsg) {
        match self {
            EslurmNode::Master(m) => {
                let _mem = tag_scope(MemTag::Master);
                m.on_message(ctx, from, msg)
            }
            EslurmNode::Satellite(s) => {
                let _mem = tag_scope(MemTag::Satellite);
                s.on_message(ctx, from, msg)
            }
            EslurmNode::Slave(s) => s.on_message(ctx, from, msg),
        }
    }
    fn on_timer(&mut self, ctx: &mut dyn Context<RmMsg>, token: u64) {
        match self {
            EslurmNode::Master(m) => {
                let _mem = tag_scope(MemTag::Master);
                m.on_timer(ctx, token)
            }
            EslurmNode::Satellite(s) => {
                let _mem = tag_scope(MemTag::Satellite);
                s.on_timer(ctx, token)
            }
            EslurmNode::Slave(s) => s.on_timer(ctx, token),
        }
    }
}

/// A built ESlurm cluster.
pub struct EslurmSystem {
    /// The running simulation.
    pub sim: SimCluster<RmMsg, EslurmNode>,
    /// Number of satellites (nodes `1..=n_satellites`).
    pub n_satellites: usize,
    /// Number of compute nodes.
    pub n_slaves: usize,
    /// Multi-tenant policy layers for scheduling runs over this cluster
    /// (see [`EslurmSystem::backfill_config`]).
    pub policies: SchedPolicies,
}

/// Builder for [`EslurmSystem`].
pub struct EslurmSystemBuilder {
    cfg: EslurmConfig,
    n_slaves: usize,
    seed: u64,
    faults: Option<FaultPlan>,
    predictor: Option<Arc<Mutex<dyn FailurePredictor>>>,
    sample_until: Option<SimTime>,
    track_satellites: bool,
    obs: Recorder,
    sampler: Sampler,
    shards: usize,
    policies: SchedPolicies,
    engine: EngineProfiler,
    slo: SloEngine,
    mem: MemProfiler,
}

impl EslurmSystemBuilder {
    /// Start building a cluster of `n_slaves` compute nodes.
    pub fn new(cfg: EslurmConfig, n_slaves: usize, seed: u64) -> Self {
        EslurmSystemBuilder {
            cfg,
            n_slaves,
            seed,
            faults: None,
            predictor: None,
            sample_until: None,
            track_satellites: false,
            obs: Recorder::disabled(),
            sampler: Sampler::disabled(),
            shards: 1,
            policies: SchedPolicies::default(),
            engine: EngineProfiler::disabled(),
            slo: SloEngine::disabled(),
            mem: MemProfiler::disabled(),
        }
    }

    /// Install a partition set for scheduling runs over this cluster
    /// (mirrored verbatim on `RmClusterBuilder` — the builder-parity
    /// convention). The default single unconstrained partition leaves
    /// outcomes bit-identical to a partition-unaware scheduler.
    pub fn partitions(mut self, partitions: PartitionSet) -> Self {
        self.policies.partitions = partitions;
        self
    }

    /// Install a fair-share ledger (mirrored on `RmClusterBuilder`). The
    /// default disabled ledger charges nothing and scores everyone 1.0.
    pub fn fairshare(mut self, fairshare: FairShareLedger) -> Self {
        self.policies.fairshare = fairshare;
        self
    }

    /// Install a priority composition (mirrored on `RmClusterBuilder`).
    /// The default uniform composer never reorders the queue.
    pub fn priority(mut self, priority: MultifactorPriority) -> Self {
        self.policies.priority = priority;
        self
    }

    /// Run the DES over `n` event-queue shards (see [`SimConfig::shards`]).
    /// The partition follows the FP-Tree: the master keeps shard 0,
    /// satellite `i` takes shard `i mod k` (where `k = min(n, satellites)`),
    /// and the `i`-th balanced contiguous block of compute nodes — the block
    /// satellite `i` serves in the master's dispatch split — rides on its
    /// satellite's shard. Outcomes are bit-identical for every `n`; only
    /// wall-clock changes.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    /// Record transport and daemon telemetry into `recorder`: the DES
    /// traces message flow and fault marks, the master traces job/task/FSM
    /// activity, and every satellite traces task service times.
    pub fn obs(mut self, recorder: Recorder) -> Self {
        self.obs = recorder;
        self
    }

    /// Profile the engine's *wall-clock* behaviour into `profiler`
    /// (mirrored on `RmClusterBuilder`): per-shard busy/barrier/drain/queue
    /// time, window-efficiency counters, and cross-shard traffic. Unlike
    /// every other sink on this builder the profiler measures real time —
    /// it never touches the virtual-time path, so enabling it changes no
    /// outcome and no trace/CSV byte. Read it back via
    /// [`SimCluster::engine_profiler`] after the run.
    pub fn engine_profile(mut self, profiler: EngineProfiler) -> Self {
        self.engine = profiler;
        self
    }

    /// Evaluate SLO specs online against this run's telemetry (mirrored on
    /// `RmClusterBuilder`). The engine runs on the sampling cadence, so a
    /// sampler or `sample_until` bound must also be configured for it to
    /// tick. Like the profiler it is strictly observational: it reads the
    /// recorder/sampler and writes only its own state, so enabling it
    /// changes no outcome and no base trace/CSV byte. Read results back
    /// via [`SimCluster::slo_engine`] after the run.
    pub fn slo(mut self, engine: SloEngine) -> Self {
        self.slo = engine;
        self
    }

    /// Profile the reproduction's *own heap* into `profiler` (host-memory
    /// domain, DESIGN §15). Requires the `mem-profile` feature to measure
    /// anything — without it the handle is inert. Like the wall-clock
    /// profiler it never touches the virtual-time path: outcomes and base
    /// exports are byte-identical with it armed or not; the per-tag
    /// `mem_host_*` series land in the sampler's separate host store.
    /// Read results back via [`SimCluster::mem_profiler`] after the run.
    pub fn mem_profile(mut self, profiler: MemProfiler) -> Self {
        self.mem = profiler;
        self
    }

    /// Inject the given outage schedule (indices refer to the final node
    /// layout: 0 = master, 1..=m satellites, then compute nodes).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Install a failure predictor shared by all satellites.
    pub fn predictor(mut self, p: Arc<Mutex<dyn FailurePredictor>>) -> Self {
        self.predictor = Some(p);
        self
    }

    /// Record 1 Hz meter samples for the master (and optionally the
    /// satellites) until `until`.
    pub fn sample_until(mut self, until: SimTime, satellites_too: bool) -> Self {
        self.sample_until = Some(until);
        self.track_satellites = satellites_too;
        self
    }

    /// Feed labeled footprint time series into `sampler` on the metering
    /// cadence. Tracked nodes get stable labels: the master is
    /// `node=master`, satellites `node=sat<i>`. Combine with
    /// [`Self::sample_until`] to set cadence and tracking, or let the
    /// sampler's own `every_until` configuration drive both.
    pub fn sampler(mut self, sampler: Sampler) -> Self {
        self.sampler = sampler;
        self
    }

    /// Materialize the system.
    pub fn build(self) -> EslurmSystem {
        let m = self.cfg.n_satellites;
        let total = 1 + m + self.n_slaves;
        let sat_ids: Vec<u32> = (1..=m as u32).collect();
        let slave_ids: Vec<u32> = (m as u32 + 1..total as u32).collect();

        let mut actors: Vec<EslurmNode> = Vec::with_capacity(total);
        actors.push(EslurmNode::Master(
            EslurmMaster::new(self.cfg.clone(), slave_ids, sat_ids.clone())
                .with_obs(self.obs.clone()),
        ));
        for _ in 0..m {
            actors.push(EslurmNode::Satellite(
                SatelliteDaemon::new(self.cfg.clone(), self.predictor.clone())
                    .with_obs(self.obs.clone()),
            ));
        }
        for _ in 0..self.n_slaves {
            // ESlurm compute nodes don't push heartbeats to the master;
            // liveness is collected through satellite Ping sweeps.
            actors.push(EslurmNode::Slave(SlaveDaemon::new(SlaveConfig {
                master: NodeId::MASTER,
                heartbeat: SlaveHeartbeat::None,
                conn_lifetime: self.cfg.conn_lifetime,
                ..SlaveConfig::default()
            })));
        }

        let mut config = SimConfig::new(total, self.seed);
        config.shards = self.shards;
        if self.shards > 1 {
            let k = self.shards.min(m.max(1));
            let mut part = vec![0u32; total];
            for i in 0..m {
                part[1 + i] = (i % k) as u32;
            }
            for (i, &(start, len)) in crate::config::partition(self.n_slaves, m.max(1))
                .iter()
                .enumerate()
            {
                for j in start..start + len {
                    part[1 + m + j] = (i % k) as u32;
                }
            }
            config.partition = Some(part);
        }
        config.obs = self.obs;
        config.engine = self.engine;
        config.slo = self.slo;
        config.mem = self.mem;
        if self.sampler.enabled() {
            self.sampler.name_node(NodeId::MASTER.0, "master");
            for (i, &s) in sat_ids.iter().enumerate() {
                self.sampler.name_node(s, &format!("sat{}", i + 1));
            }
            config.sampler = self.sampler;
        }
        if let Some(f) = self.faults {
            config.faults = f;
        }
        if let Some(until) = self.sample_until {
            let mut tracked = vec![NodeId::MASTER];
            if self.track_satellites {
                tracked.extend(sat_ids.iter().map(|&s| NodeId(s)));
            }
            config.sampling = Some(Sampling {
                interval: SimSpan::from_secs(1),
                tracked,
                until,
            });
        }
        EslurmSystem {
            sim: SimCluster::new(actors, config),
            n_satellites: m,
            n_slaves: self.n_slaves,
            policies: self.policies,
        }
    }
}

impl EslurmSystem {
    /// The master's actor state.
    pub fn master(&self) -> &EslurmMaster {
        match self.sim.actor(NodeId::MASTER) {
            EslurmNode::Master(m) => m,
            _ => unreachable!("node 0 is the master"),
        }
    }

    /// Satellite `idx` (0-based) actor state.
    pub fn satellite(&self, idx: usize) -> &SatelliteDaemon {
        match self.sim.actor(NodeId(1 + idx as u32)) {
            EslurmNode::Satellite(s) => s,
            _ => unreachable!("nodes 1..=m are satellites"),
        }
    }

    /// The node id of compute node `i` (0-based).
    pub fn slave_id(&self, i: usize) -> u32 {
        (1 + self.n_satellites + i) as u32
    }

    /// A [`BackfillConfig`] sized to this cluster's compute nodes with the
    /// builder's policy layers installed — the bridge from the emulated
    /// system to `sched::simulate` scheduling runs.
    pub fn backfill_config(&self) -> BackfillConfig {
        let mut cfg = BackfillConfig::new(self.n_slaves as u32);
        cfg.policies = self.policies.clone();
        cfg
    }

    /// Submit a job over the given compute-node indices (0-based) at `at`.
    pub fn submit(&mut self, at: SimTime, job: u64, slave_idxs: &[usize], runtime: SimSpan) {
        let nodes = NodeSlice::from_nodes(slave_idxs.iter().map(|&i| self.slave_id(i)));
        self.sim.inject(
            at,
            NodeId::MASTER,
            NodeId::MASTER,
            RmMsg::SubmitJob {
                job,
                nodes,
                runtime_us: runtime.as_micros(),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsm::SatState;

    fn small_cfg(m: usize) -> EslurmConfig {
        EslurmConfig {
            n_satellites: m,
            eq1_width: 16,
            relay_width: 8,
            hb_sweep_interval: SimSpan::from_secs(60),
            sat_hb_interval: SimSpan::from_secs(5),
            ..Default::default()
        }
    }

    #[test]
    fn job_lifecycle_completes() {
        let mut sys = EslurmSystemBuilder::new(small_cfg(2), 64, 3).build();
        sys.submit(
            SimTime::from_secs(1),
            42,
            &(0..32).collect::<Vec<_>>(),
            SimSpan::from_secs(10),
        );
        sys.sim.run_until(SimTime::from_secs(30));
        let master = sys.master();
        assert_eq!(master.records.len(), 1);
        let r = master.records[0];
        assert_eq!(r.job, 42);
        assert_eq!(r.nodes, 32);
        let occ = r.occupation();
        assert!(
            occ >= SimSpan::from_secs(10) && occ < SimSpan::from_secs(13),
            "{occ}"
        );
        assert_eq!(master.takeovers, 0);
    }

    #[test]
    fn heartbeat_sweeps_cover_all_slaves() {
        let mut sys = EslurmSystemBuilder::new(small_cfg(2), 100, 5).build();
        sys.sim.run_until(SimTime::from_secs(200));
        let master = sys.master();
        assert!(!master.sweeps.is_empty(), "no sweeps completed");
        for s in &master.sweeps {
            assert_eq!(s.reached, 100, "sweep missed nodes");
        }
    }

    #[test]
    fn master_has_few_sockets_satellites_share_load() {
        let mut sys = EslurmSystemBuilder::new(small_cfg(4), 400, 7).build();
        sys.sim.run_until(SimTime::from_secs(300));
        // The master only ever talks to satellites: its socket peak stays
        // tiny even while sweeps cover 400 nodes.
        assert!(
            sys.sim.meter(NodeId::MASTER).peak_sockets() <= 8,
            "master peak sockets {}",
            sys.sim.meter(NodeId::MASTER).peak_sockets()
        );
        // All satellites processed work.
        for i in 0..4 {
            assert!(sys.satellite(i).tasks_done > 0, "satellite {i} idle");
        }
    }

    #[test]
    fn eq1_splits_large_jobs_across_satellites() {
        let mut sys = EslurmSystemBuilder::new(
            EslurmConfig {
                eq1_width: 16,
                ..small_cfg(4)
            },
            128,
            9,
        )
        .build();
        // 64 nodes, width 16 => Eq. 1 gives 4 satellites.
        sys.submit(
            SimTime::from_secs(1),
            1,
            &(0..64).collect::<Vec<_>>(),
            SimSpan::from_secs(5),
        );
        sys.sim.run_until(SimTime::from_secs(20));
        let with_work = (0..4).filter(|&i| sys.satellite(i).tasks_done > 0).count();
        assert_eq!(with_work, 4, "expected all satellites to carry a share");
        assert_eq!(sys.master().records.len(), 1);
    }

    #[test]
    fn dead_satellite_triggers_reassignment_not_loss() {
        let m = 2;
        // Satellite node 1 dies just before the job is submitted and stays
        // dead; satellite 2 (or the master) must pick up the work.
        let total = 1 + m + 64;
        let faults = FaultPlan::from_outages(
            total,
            vec![emu::Outage {
                node: NodeId(1),
                down_at: SimTime::from_millis(500),
                up_at: SimTime::from_secs(100_000),
            }],
        );
        let mut sys = EslurmSystemBuilder::new(small_cfg(m), 64, 11)
            .faults(faults)
            .build();
        sys.submit(
            SimTime::from_secs(1),
            77,
            &(0..48).collect::<Vec<_>>(),
            SimSpan::from_secs(5),
        );
        sys.sim.run_until(SimTime::from_secs(120));
        let master = sys.master();
        assert_eq!(master.records.len(), 1, "job lost after satellite failure");
        assert!(
            master.reassignments > 0 || master.takeovers > 0,
            "failure was never detected"
        );
        // The dead satellite ends up FAULT/DOWN on the master's FSM.
        let st = master.satellite_state(0, sys.sim.now());
        assert!(matches!(st, SatState::Fault | SatState::Down), "{st:?}");
    }

    #[test]
    fn cancellation_cuts_a_running_job_short() {
        let mut sys = EslurmSystemBuilder::new(small_cfg(2), 64, 15).build();
        // A ten-minute job, cancelled two minutes in.
        sys.submit(
            SimTime::from_secs(1),
            9,
            &(0..32).collect::<Vec<_>>(),
            SimSpan::from_secs(600),
        );
        sys.sim.inject(
            SimTime::from_secs(120),
            NodeId(1),
            NodeId::MASTER,
            rm::proto::RmMsg::CancelJob { job: 9 },
        );
        sys.sim.run_until(SimTime::from_secs(400));
        let master = sys.master();
        assert_eq!(master.records.len(), 1, "cancelled job never cleaned up");
        let occ = master.records[0].occupation().as_secs_f64();
        assert!(
            (119.0..140.0).contains(&occ),
            "occupation {occ}s should reflect the cancellation, not the 600s runtime"
        );
    }

    #[test]
    fn cancelling_unknown_job_is_harmless() {
        let mut sys = EslurmSystemBuilder::new(small_cfg(2), 16, 15).build();
        sys.sim.inject(
            SimTime::from_secs(5),
            NodeId(1),
            NodeId::MASTER,
            rm::proto::RmMsg::CancelJob { job: 12345 },
        );
        sys.sim.run_until(SimTime::from_secs(60));
        assert!(sys.master().records.is_empty());
    }

    #[test]
    fn deterministic_run() {
        let build = || {
            let mut sys = EslurmSystemBuilder::new(small_cfg(2), 64, 13).build();
            sys.submit(
                SimTime::from_secs(2),
                5,
                &(0..16).collect::<Vec<_>>(),
                SimSpan::from_secs(7),
            );
            sys.sim.run_until(SimTime::from_secs(60));
            (
                sys.sim.events_processed(),
                sys.master().records.len(),
                sys.master().sweeps.len(),
            )
        };
        assert_eq!(build(), build());
    }
}
