//! The ESlurm master daemon (paper §III): keeps the global view of
//! resources and jobs, but offloads every large-scale communication to the
//! satellite layer — dynamic satellite allocation (Eq. 1), round-robin
//! mapping, BT/HB failure detection with the Table II state machine,
//! task reassignment, and master takeover after the reassignment threshold.

use crate::config::{partition, satellites_needed, EslurmConfig};
use crate::fsm::{SatEvent, SatFsm, SatState};
use emu::{Actor, Context, NodeId};
use obs::{
    Counter, EventKind, FlowKind, Gauge, Hist, LabeledCounter, MetricId, Recorder, TraceContext,
};
use rm::master::JobRecord;
use rm::proto::{CtlKind, NodeSlice, RmMsg};
use simclock::{SimSpan, SimTime};
use std::collections::{BTreeMap, VecDeque};
use topology::split_balanced;

const TOKEN_SWEEP: u64 = 0;
const TOKEN_SAT_HB: u64 = 1;
const TOKEN_DISPATCH: u64 = 2;
const TOKEN_BASE: u64 = 8;
const JOB_RUN_DONE: u64 = 3;
const TASK_TIMEOUT: u64 = 4;
const QUERY_REPLY: u64 = 5;
/// Sweep pseudo-job ids live above this bit.
const SWEEP_BIT: u64 = 1 << 62;

/// One completed heartbeat sweep (drives Fig. 11a).
#[derive(Clone, Copy, Debug)]
pub struct SweepRecord {
    /// When the sweep started.
    pub started: SimTime,
    /// Submission-to-last-report latency.
    pub completion: SimSpan,
    /// Nodes confirmed alive.
    pub reached: u32,
}

enum JobKind {
    Real { runtime: SimSpan },
    Sweep,
}

struct JobState {
    kind: JobKind,
    nodes: NodeSlice,
    submitted: SimTime,
    launch_done: Option<SimTime>,
    phase: CtlKind,
    tasks_total: u32,
    tasks_done: u32,
    reached: u32,
    /// Causal-trace root for this job's flow (dispatch or sweep); `None`
    /// unless the recorder has causal tracing on.
    trace: Option<TraceContext>,
}

struct Task {
    job: u64,
    kind: CtlKind,
    list: NodeSlice,
    sat: Option<usize>,
    attempts: u32,
    done: bool,
    /// Takeover aggregation (when the master relays directly).
    takeover_expected: u32,
    takeover_received: u32,
    takeover_reached: u32,
    /// Causal context the task's broadcast sends attach to (copied from
    /// the job at creation, replaced by a recovery root on takeover).
    trace: Option<TraceContext>,
    /// When this task's broadcast was last sent out (start of the timeout
    /// window a later `TASK_TIMEOUT` relabels as backoff).
    sent_at: SimTime,
}

/// The ESlurm master actor.
pub struct EslurmMaster {
    cfg: EslurmConfig,
    slaves: NodeSlice,
    satellites: Vec<u32>,
    fsm: Vec<SatFsm>,
    hb_pending: Vec<bool>,
    rr: usize,
    jobs: BTreeMap<u64, JobState>,
    tasks: BTreeMap<u64, Task>,
    dispatch_q: VecDeque<u64>,
    dispatching: bool,
    next_task: u64,
    sweep_seq: u64,
    /// Completed jobs, in completion order.
    pub records: Vec<JobRecord>,
    /// Completed heartbeat sweeps.
    pub sweeps: Vec<SweepRecord>,
    /// Broadcast tasks handed to a different satellite after a failure.
    pub reassignments: u64,
    /// Broadcast tasks the master had to handle itself.
    pub takeovers: u64,
    /// Serial work backlog (delays user-request replies).
    busy_until: SimTime,
    pending_queries: BTreeMap<u64, NodeId>,
    query_arrival: BTreeMap<u64, SimTime>,
    /// `(request id, response latency)` for served user requests.
    pub query_log: Vec<(u64, SimSpan)>,
    obs: Recorder,
    /// Per-satellite task-assignment counters (`tasks_assigned{sat=..}`),
    /// the tree-level footprint breakdown behind the aggregate
    /// [`Counter::TasksAssigned`]. Empty when `obs` is disabled.
    sat_tasks: Vec<LabeledCounter>,
}

impl EslurmMaster {
    /// A master over `slaves` (compute node ids) and `satellites`.
    pub fn new(cfg: EslurmConfig, slaves: Vec<u32>, satellites: Vec<u32>) -> Self {
        let m = satellites.len();
        assert!(m >= 1, "ESlurm needs at least one satellite");
        EslurmMaster {
            cfg,
            slaves: NodeSlice::new(slaves),
            satellites,
            fsm: vec![SatFsm::new(); m],
            hb_pending: vec![false; m],
            rr: 0,
            jobs: BTreeMap::new(),
            tasks: BTreeMap::new(),
            dispatch_q: VecDeque::new(),
            dispatching: false,
            next_task: 0,
            sweep_seq: 0,
            records: Vec::new(),
            sweeps: Vec::new(),
            reassignments: 0,
            takeovers: 0,
            busy_until: SimTime::ZERO,
            pending_queries: BTreeMap::new(),
            query_arrival: BTreeMap::new(),
            query_log: Vec::new(),
            obs: Recorder::disabled(),
            sat_tasks: Vec::new(),
        }
    }

    /// Record job/task/FSM telemetry into `obs` (builder-style).
    pub fn with_obs(mut self, obs: Recorder) -> Self {
        if obs.enabled() {
            self.sat_tasks = (1..=self.satellites.len())
                .map(|i| {
                    obs.labeled_counter(
                        MetricId::new("tasks_assigned").with("sat", format!("sat{i}")),
                    )
                })
                .collect();
        }
        self.obs = obs;
        self
    }

    /// Apply an FSM event to satellite `idx`, tracing the transition if
    /// the observable state actually changed.
    fn apply_fsm(&mut self, idx: usize, event: SatEvent, now: SimTime) {
        let before = self.fsm[idx].state(now);
        let after = self.fsm[idx].apply(event, now);
        if before != after {
            self.obs.inc(Counter::FsmTransitions);
            self.obs.event_at(
                now,
                self.satellites[idx],
                EventKind::FsmTransition,
                before.wire_id() as u64,
                after.wire_id() as u64,
            );
        }
    }

    /// Track serial daemon work (CPU + reply backlog).
    fn track_work(busy_until: &mut SimTime, ctx: &mut dyn Context<RmMsg>, cost: SimSpan) {
        ctx.charge_cpu(cost);
        *busy_until = (*busy_until).max(ctx.now()) + cost;
    }

    /// Current FSM state of satellite `idx`.
    pub fn satellite_state(&self, idx: usize, now: SimTime) -> SatState {
        self.fsm[idx].state(now)
    }

    fn start_ctl(&mut self, ctx: &mut dyn Context<RmMsg>, job: u64, kind: CtlKind) {
        let state = self.jobs.get_mut(&job).expect("ctl for unknown job");
        state.phase = kind;
        state.tasks_done = 0;
        state.reached = 0;
        let trace = state.trace;
        let list = state.nodes.clone();
        let n = satellites_needed(list.len(), self.cfg.eq1_width, self.satellites.len());
        let parts = partition(list.len(), n);
        state.tasks_total = parts.len() as u32;
        let task_ids: Vec<u64> = parts
            .iter()
            .map(|&(lo, len)| {
                let id = self.next_task;
                self.next_task += 1;
                self.tasks.insert(
                    id,
                    Task {
                        job,
                        kind,
                        list: list.slice(lo, lo + len),
                        sat: None,
                        attempts: 0,
                        done: false,
                        takeover_expected: 0,
                        takeover_received: 0,
                        takeover_reached: 0,
                        trace,
                        sent_at: SimTime::ZERO,
                    },
                );
                id
            })
            .collect();
        for id in task_ids {
            self.assign_task(ctx, id);
        }
        self.obs
            .gauge_set(Gauge::TasksInFlight, self.tasks.len() as i64);
    }

    /// Round-robin over RUNNING satellites; `None` if the pool is dry.
    fn next_satellite(&mut self, now: SimTime) -> Option<usize> {
        let m = self.satellites.len();
        for k in 0..m {
            let idx = (self.rr + k) % m;
            if self.fsm[idx].is_available(now) {
                self.rr = (idx + 1) % m;
                return Some(idx);
            }
        }
        None
    }

    fn assign_task(&mut self, ctx: &mut dyn Context<RmMsg>, task_id: u64) {
        match self.next_satellite(ctx.now()) {
            Some(idx) => {
                self.apply_fsm(idx, SatEvent::TaskAssigned, ctx.now());
                self.obs.inc(Counter::TasksAssigned);
                if let Some(c) = self.sat_tasks.get(idx) {
                    c.inc();
                }
                let sat_node = self.satellites[idx] as u64;
                let task = self
                    .tasks
                    .get_mut(&task_id)
                    .expect("assigning unknown task");
                task.sat = Some(idx);
                self.obs.event_at(
                    ctx.now(),
                    ctx.me().0,
                    EventKind::TaskAssign,
                    task.job,
                    sat_node,
                );
                self.dispatch_q.push_back(task_id);
                if !self.dispatching {
                    self.dispatching = true;
                    ctx.set_timer(self.cfg.task_prep_cpu, TOKEN_DISPATCH);
                }
            }
            None => self.take_over(ctx, task_id),
        }
    }

    /// The master handles a broadcast itself (reassignment threshold
    /// exceeded or no satellite available) — correctness over offload.
    fn take_over(&mut self, ctx: &mut dyn Context<RmMsg>, task_id: u64) {
        self.takeovers += 1;
        self.obs.inc(Counter::Takeovers);
        let task = self
            .tasks
            .get_mut(&task_id)
            .expect("takeover of unknown task");
        task.sat = None;
        // A takeover is the failure-recovery flow: root a fresh trace here
        // so the master's direct relay fan-out is attributed to recovery
        // rather than to the original dispatch/sweep.
        if let Some(rec) = ctx.trace_begin(FlowKind::Recovery) {
            task.trace = Some(rec);
        }
        self.obs
            .event_at(ctx.now(), ctx.me().0, EventKind::TaskTakeover, task.job, 0);
        if task.list.is_empty() {
            let (job, kind) = (task.job, task.kind);
            task.done = true;
            self.task_completed(ctx, job, kind, 0);
            return;
        }
        let w = self.cfg.relay_width.max(2);
        let task_len = task.list.len();
        let k = if task_len < w { task_len } else { w };
        let chunks = split_balanced(task_len, k);
        task.takeover_expected = chunks.len() as u32;
        task.sent_at = ctx.now();
        let (job, kind) = (task.job, task.kind);
        let list = task.list.clone();
        for (lo, len) in chunks {
            let head = list.nodes()[lo];
            Self::track_work(&mut self.busy_until, ctx, self.cfg.msg_cpu);
            ctx.open_socket_for(NodeId(head), self.cfg.conn_lifetime);
            ctx.send(
                NodeId(head),
                RmMsg::JobCtl {
                    job,
                    kind,
                    list: list.slice(lo + 1, lo + len),
                    width: w as u16,
                },
            );
        }
        let depth = topology::relay_depth(task_len, w) as u64;
        ctx.set_timer(
            self.cfg.task_timeout * (depth + 1),
            task_id * TOKEN_BASE + TASK_TIMEOUT,
        );
    }

    fn task_completed(
        &mut self,
        ctx: &mut dyn Context<RmMsg>,
        job: u64,
        kind: CtlKind,
        reached: u32,
    ) {
        let (is_sweep, runtime) = {
            let Some(state) = self.jobs.get_mut(&job) else {
                return;
            };
            if state.phase != kind {
                return; // stale completion from a previous phase
            }
            state.tasks_done += 1;
            state.reached += reached;
            if state.tasks_done < state.tasks_total {
                return;
            }
            match state.kind {
                JobKind::Sweep => (true, SimSpan::ZERO),
                JobKind::Real { runtime } => (false, runtime),
            }
        };
        // Whole broadcast finished.
        if is_sweep {
            let state = self.jobs.remove(&job).expect("sweep vanished");
            let completion = ctx.now() - state.submitted;
            self.obs.inc(Counter::SweepsDone);
            self.obs
                .observe(Hist::SweepCompletionUs, completion.as_micros());
            self.obs.span_from(
                state.submitted,
                ctx.now(),
                ctx.me().0,
                EventKind::SweepDone,
                job & !SWEEP_BIT,
                state.reached as u64,
            );
            self.sweeps.push(SweepRecord {
                started: state.submitted,
                completion,
                reached: state.reached,
            });
            return;
        }
        match kind {
            CtlKind::Launch => {
                let state = self.jobs.get_mut(&job).expect("job vanished");
                state.launch_done = Some(ctx.now());
                ctx.set_timer(runtime, job * TOKEN_BASE + JOB_RUN_DONE);
            }
            CtlKind::Terminate => {
                let state = self.jobs.remove(&job).expect("job vanished");
                self.obs.inc(Counter::JobsCompleted);
                self.obs.span_from(
                    state.submitted,
                    ctx.now(),
                    ctx.me().0,
                    EventKind::JobComplete,
                    job,
                    0,
                );
                Self::track_work(&mut self.busy_until, ctx, self.cfg.sched_cpu);
                let keep = self.cfg.job_record_leak as i64;
                ctx.alloc_virt(-(self.cfg.per_job_virt as i64) + keep);
                ctx.alloc_real(-(self.cfg.per_job_real as i64) + keep / 4);
                self.records.push(JobRecord {
                    job,
                    submitted: state.submitted,
                    launch_done: state.launch_done.unwrap_or(ctx.now()),
                    finished: ctx.now(),
                    nodes: state.nodes.len() as u32,
                });
            }
            CtlKind::Ping => {}
        }
    }

    fn start_sweep(&mut self, ctx: &mut dyn Context<RmMsg>) {
        let job = SWEEP_BIT | self.sweep_seq;
        self.sweep_seq += 1;
        Self::track_work(&mut self.busy_until, ctx, self.cfg.sched_cpu);
        let trace = ctx.trace_begin(FlowKind::Sweep);
        self.jobs.insert(
            job,
            JobState {
                kind: JobKind::Sweep,
                nodes: self.slaves.clone(),
                submitted: ctx.now(),
                launch_done: None,
                phase: CtlKind::Ping,
                tasks_total: 0,
                tasks_done: 0,
                reached: 0,
                trace,
            },
        );
        self.start_ctl(ctx, job, CtlKind::Ping);
    }
}

impl Actor<RmMsg> for EslurmMaster {
    fn on_start(&mut self, ctx: &mut dyn Context<RmMsg>) {
        ctx.alloc_virt(
            (self.cfg.base_virt + self.slaves.len() as u64 * self.cfg.per_node_virt) as i64,
        );
        ctx.alloc_real(
            (self.cfg.base_real + self.slaves.len() as u64 * self.cfg.per_node_real) as i64,
        );
        // Probe the satellite pool right away so it is RUNNING before the
        // first jobs arrive; subsequent rounds follow the configured period.
        ctx.set_timer(SimSpan::from_millis(10), TOKEN_SAT_HB);
        ctx.set_timer(self.cfg.hb_sweep_interval, TOKEN_SWEEP);
    }

    fn on_message(&mut self, ctx: &mut dyn Context<RmMsg>, from: NodeId, msg: RmMsg) {
        match msg {
            RmMsg::SubmitJob {
                job,
                nodes,
                runtime_us,
            } => {
                Self::track_work(&mut self.busy_until, ctx, self.cfg.sched_cpu);
                ctx.alloc_virt(self.cfg.per_job_virt as i64);
                ctx.alloc_real(self.cfg.per_job_real as i64);
                self.obs.inc(Counter::JobsSubmitted);
                self.obs.event_at(
                    ctx.now(),
                    ctx.me().0,
                    EventKind::JobSubmit,
                    job,
                    nodes.len() as u64,
                );
                let trace = ctx.trace_begin(FlowKind::Dispatch);
                self.jobs.insert(
                    job,
                    JobState {
                        kind: JobKind::Real {
                            runtime: SimSpan::from_micros(runtime_us),
                        },
                        nodes,
                        submitted: ctx.now(),
                        launch_done: None,
                        phase: CtlKind::Launch,
                        tasks_total: 0,
                        tasks_done: 0,
                        reached: 0,
                        trace,
                    },
                );
                self.start_ctl(ctx, job, CtlKind::Launch);
            }
            RmMsg::BcastDone {
                task,
                job,
                kind,
                reached,
                ok: _,
            } => {
                Self::track_work(&mut self.busy_until, ctx, self.cfg.msg_cpu);
                let Some(t) = self.tasks.get_mut(&task) else {
                    return;
                };
                if t.done {
                    return;
                }
                t.done = true;
                if let Some(idx) = t.sat {
                    self.apply_fsm(idx, SatEvent::BtSuccess, ctx.now());
                }
                self.tasks.remove(&task);
                self.obs
                    .gauge_set(Gauge::TasksInFlight, self.tasks.len() as i64);
                self.task_completed(ctx, job, kind, reached);
            }
            RmMsg::CtlAck { job, kind, count } => {
                // Ack for a master-takeover relay.
                Self::track_work(&mut self.busy_until, ctx, self.cfg.msg_cpu);
                let found = self.tasks.iter_mut().find(|(_, t)| {
                    t.job == job && t.kind == kind && !t.done && t.takeover_expected > 0
                });
                if let Some((&id, t)) = found {
                    t.takeover_received += 1;
                    t.takeover_reached += count;
                    if t.takeover_received >= t.takeover_expected {
                        t.done = true;
                        let reached = t.takeover_reached;
                        self.tasks.remove(&id);
                        self.task_completed(ctx, job, kind, reached);
                    }
                }
            }
            RmMsg::CancelJob { job } => {
                Self::track_work(&mut self.busy_until, ctx, self.cfg.sched_cpu);
                let cancellable = self
                    .jobs
                    .get(&job)
                    .map(|s| {
                        matches!(s.kind, JobKind::Real { .. })
                            && s.phase == CtlKind::Launch
                            && s.tasks_done >= s.tasks_total
                    })
                    .unwrap_or(false);
                // Note: a launch-phase job whose broadcast completed is in
                // its run window (phase stays Launch until the run timer
                // flips it). Cancel = start the terminate broadcast early;
                // the stale run timer is ignored by the phase check in
                // task bookkeeping.
                if cancellable {
                    self.start_ctl(ctx, job, CtlKind::Terminate);
                }
            }
            RmMsg::StatusQuery { id } => {
                self.query_arrival.insert(id, ctx.now());
                Self::track_work(&mut self.busy_until, ctx, self.cfg.sched_cpu);
                self.pending_queries.insert(id, from);
                let delay = self.busy_until - ctx.now();
                ctx.set_timer(delay, id * TOKEN_BASE + QUERY_REPLY);
            }
            RmMsg::SatHeartbeatAck { state } => {
                Self::track_work(&mut self.busy_until, ctx, self.cfg.msg_cpu);
                if let Some(idx) = self.satellites.iter().position(|&s| s == from.0) {
                    self.hb_pending[idx] = false;
                    let _ = SatState::from_wire(state);
                    self.apply_fsm(idx, SatEvent::HbSuccess, ctx.now());
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn Context<RmMsg>, token: u64) {
        match token {
            TOKEN_SWEEP => {
                self.start_sweep(ctx);
                ctx.set_timer(self.cfg.hb_sweep_interval, TOKEN_SWEEP);
                return;
            }
            TOKEN_SAT_HB => {
                // Unanswered probes from the previous round are failures.
                for idx in 0..self.satellites.len() {
                    if self.hb_pending[idx] {
                        self.hb_pending[idx] = false;
                        self.apply_fsm(idx, SatEvent::HbFailure, ctx.now());
                    }
                }
                for idx in 0..self.satellites.len() {
                    if self.fsm[idx].state(ctx.now()) == SatState::Down {
                        continue; // needs administrator intervention
                    }
                    Self::track_work(&mut self.busy_until, ctx, self.cfg.msg_cpu);
                    ctx.open_socket_for(NodeId(self.satellites[idx]), self.cfg.conn_lifetime);
                    ctx.send(NodeId(self.satellites[idx]), RmMsg::SatHeartbeat);
                    self.hb_pending[idx] = true;
                }
                ctx.set_timer(self.cfg.sat_hb_interval, TOKEN_SAT_HB);
                return;
            }
            TOKEN_DISPATCH => {
                if let Some(task_id) = self.dispatch_q.pop_front() {
                    if let Some(t) = self.tasks.get_mut(&task_id) {
                        if !t.done {
                            if let Some(idx) = t.sat {
                                Self::track_work(&mut self.busy_until, ctx, self.cfg.task_prep_cpu);
                                ctx.trace_adopt(t.trace);
                                t.sent_at = ctx.now();
                                let sat_node = NodeId(self.satellites[idx]);
                                ctx.open_socket_for(sat_node, self.cfg.conn_lifetime);
                                ctx.send(
                                    sat_node,
                                    RmMsg::BcastTask {
                                        task: task_id,
                                        job: t.job,
                                        kind: t.kind,
                                        list: t.list.clone(),
                                        width: self.cfg.relay_width as u16,
                                    },
                                );
                                // Timeout covers satellite processing plus
                                // the depth-scaled relay round trip below it.
                                let proc = SimSpan(
                                    self.cfg.sat_per_node_cpu.as_micros()
                                        * t.list.len().max(1) as u64,
                                );
                                let depth =
                                    topology::relay_depth(t.list.len(), self.cfg.relay_width)
                                        as u64;
                                ctx.set_timer(
                                    self.cfg.task_timeout * (depth + 2) + proc,
                                    task_id * TOKEN_BASE + TASK_TIMEOUT,
                                );
                            }
                        }
                    }
                }
                if self.dispatch_q.is_empty() {
                    self.dispatching = false;
                } else {
                    ctx.set_timer(self.cfg.task_prep_cpu, TOKEN_DISPATCH);
                }
                return;
            }
            _ => {}
        }
        let id = token / TOKEN_BASE;
        match token % TOKEN_BASE {
            JOB_RUN_DONE => {
                // Skip jobs already heading out (e.g. cancelled mid-run).
                let still_running = self
                    .jobs
                    .get(&id)
                    .map(|s| s.phase == CtlKind::Launch)
                    .unwrap_or(false);
                if still_running {
                    Self::track_work(&mut self.busy_until, ctx, self.cfg.sched_cpu);
                    if let Some(s) = self.jobs.get(&id) {
                        ctx.trace_adopt(s.trace);
                    }
                    self.start_ctl(ctx, id, CtlKind::Terminate);
                }
            }
            QUERY_REPLY => {
                if let Some(asker) = self.pending_queries.remove(&id) {
                    if let Some(arrived) = self.query_arrival.remove(&id) {
                        let latency = ctx.now() - arrived;
                        self.obs.inc(Counter::QueriesServed);
                        self.obs.observe(Hist::QueryLatencyUs, latency.as_micros());
                        self.obs.event_at(
                            ctx.now(),
                            ctx.me().0,
                            EventKind::QueryServed,
                            asker.0 as u64,
                            0,
                        );
                        self.query_log.push((id, latency));
                    }
                    ctx.send(asker, RmMsg::StatusReply { id });
                }
            }
            TASK_TIMEOUT => {
                let Some(t) = self.tasks.get_mut(&id) else {
                    return;
                };
                if t.done {
                    return;
                }
                // The flow sat idle from the last broadcast until this
                // deadline: relabel the window as timeout backoff and resume
                // the trace for whatever the retry/takeover sends next.
                if let Some(tc) = t.trace {
                    ctx.trace_backoff(&tc, t.sent_at);
                    ctx.trace_adopt(Some(tc));
                }
                if t.takeover_expected > 0 {
                    // Master's own relay: close it out with partial coverage.
                    t.done = true;
                    let (job, kind, reached) = (t.job, t.kind, t.takeover_reached);
                    self.tasks.remove(&id);
                    self.task_completed(ctx, job, kind, reached);
                    return;
                }
                // Satellite failed to report: BT-failure, reassign or take
                // over (paper threshold: 2 reassignments).
                let job = t.job;
                t.attempts += 1;
                let attempts = t.attempts;
                if let Some(idx) = t.sat.take() {
                    self.apply_fsm(idx, SatEvent::BtFailure, ctx.now());
                }
                if attempts <= self.cfg.reassign_threshold {
                    self.reassignments += 1;
                    self.obs.inc(Counter::TaskRetries);
                    self.obs.event_at(
                        ctx.now(),
                        ctx.me().0,
                        EventKind::TaskRetry,
                        job,
                        attempts as u64,
                    );
                    self.assign_task(ctx, id);
                } else {
                    self.take_over(ctx, id);
                }
            }
            _ => {}
        }
    }
}
