//! The satellite daemon (paper §III): a stateless bidirectional
//! communication buffer between the master and the compute nodes.
//!
//! On receiving a broadcast task it constructs an FP-Tree over the task's
//! node list (placing currently suspected nodes on leaves), relays the
//! payload to the first-layer nodes, aggregates their acknowledgements,
//! and reports the outcome to the master. It keeps no system state across
//! tasks — exactly the property that lets the master reassign work to any
//! other satellite.

use crate::config::EslurmConfig;
use crate::fsm::SatState;
use emu::{Actor, Context, NodeId};
use monitoring::FailurePredictor;
use obs::{EventKind, Hist, Recorder, TraceContext};
use rm::proto::{CtlKind, NodeSlice, RmMsg};
use simclock::{SimSpan, SimTime};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use topology::fptree::rearrange_into;
use topology::split_balanced;

/// Aggregate FP-Tree construction statistics (the paper's "FP-tree node
/// placement" evaluation: 81.7 % of failed nodes placed on leaves).
#[derive(Clone, Copy, Debug, Default)]
pub struct FpPlacementStats {
    /// FP-Trees constructed.
    pub trees: u64,
    /// Total nodes across all constructed trees.
    pub total_nodes: u64,
    /// Suspected nodes present in task lists.
    pub suspects_seen: u64,
    /// Suspected nodes that landed on leaf positions.
    pub suspects_on_leaves: u64,
}

impl FpPlacementStats {
    /// Fraction of suspects placed on leaves (1.0 when none were seen).
    pub fn placement_ratio(&self) -> f64 {
        if self.suspects_seen == 0 {
            1.0
        } else {
            self.suspects_on_leaves as f64 / self.suspects_seen as f64
        }
    }
}

struct PendingTask {
    task: u64,
    job: u64,
    kind: CtlKind,
    origin: NodeId,
    list: NodeSlice,
    started: SimTime,
    expected: u32,
    received: u32,
    reached: u32,
    relayed: bool,
    /// When the FP-Tree fan-out went out (start of the ack deadline window).
    relayed_at: SimTime,
    /// Causal context the incoming `BcastTask` carried; the relay fan-out
    /// and the final `BcastDone` link under it.
    trace: Option<TraceContext>,
}

const TOKEN_KIND_BITS: u64 = 2;
const START_TIMER: u64 = 0;
const DEADLINE_TIMER: u64 = 1;

/// The satellite daemon actor.
pub struct SatelliteDaemon {
    cfg: EslurmConfig,
    /// Shared failure predictor (the monitoring subsystem's suspect feed).
    predictor: Option<Arc<Mutex<dyn FailurePredictor>>>,
    tasks: BTreeMap<u64, PendingTask>,
    next_token: u64,
    /// Relay-buffer high-water mark, in nodes (drives resident memory).
    buf_nodes: usize,
    /// Tasks processed successfully.
    pub tasks_done: u64,
    /// Total nodes across received tasks (Table VI's "average nodes in
    /// each task" numerator).
    pub task_nodes_total: u64,
    /// FP-Tree placement statistics.
    pub fp_stats: FpPlacementStats,
    obs: Recorder,
}

impl SatelliteDaemon {
    /// A satellite with the deployment config and an optional failure
    /// predictor (no predictor = plain grouping trees, the FP-Tree-off
    /// ablation).
    pub fn new(cfg: EslurmConfig, predictor: Option<Arc<Mutex<dyn FailurePredictor>>>) -> Self {
        SatelliteDaemon {
            cfg,
            predictor,
            tasks: BTreeMap::new(),
            next_token: 0,
            buf_nodes: 0,
            tasks_done: 0,
            task_nodes_total: 0,
            fp_stats: FpPlacementStats::default(),
            obs: Recorder::disabled(),
        }
    }

    /// Record task-service telemetry into `obs` (builder-style).
    pub fn with_obs(mut self, obs: Recorder) -> Self {
        self.obs = obs;
        self
    }

    fn state(&self) -> SatState {
        if self.tasks.is_empty() {
            SatState::Running
        } else {
            SatState::Busy
        }
    }

    fn begin_task(
        &mut self,
        ctx: &mut dyn Context<RmMsg>,
        origin: NodeId,
        task: u64,
        job: u64,
        kind: CtlKind,
        list: NodeSlice,
    ) {
        self.task_nodes_total += list.len() as u64;
        // Relay buffers grow to the largest task seen (high-water).
        if list.len() > self.buf_nodes {
            let grow = (list.len() - self.buf_nodes) as u64 * self.cfg.sat_per_task_node_real;
            ctx.alloc_real(grow as i64);
            ctx.alloc_virt(grow as i64);
            self.buf_nodes = list.len();
        }
        // Processing (FP-Tree construction + payload marshalling) costs
        // CPU proportional to the list and delays the relay by the same
        // amount — this is the per-node cost that caps how much one
        // satellite should be handed (Fig. 11a).
        let proc = SimSpan(self.cfg.sat_per_node_cpu.as_micros() * list.len().max(1) as u64);
        ctx.charge_cpu(proc);
        let token = self.next_token;
        self.next_token += 1;
        self.tasks.insert(
            token,
            PendingTask {
                task,
                job,
                kind,
                origin,
                list,
                started: ctx.now(),
                expected: 0,
                received: 0,
                reached: 0,
                relayed: false,
                relayed_at: ctx.now(),
                trace: ctx.trace_current(),
            },
        );
        ctx.set_timer(proc, token << TOKEN_KIND_BITS | START_TIMER);
    }

    fn relay(&mut self, ctx: &mut dyn Context<RmMsg>, token: u64) {
        let suspects = self
            .predictor
            .as_ref()
            .map(|p| p.lock().expect("predictor poisoned").suspects(ctx.now()))
            .unwrap_or_default();
        let Some(t) = self.tasks.get_mut(&token) else {
            return;
        };
        if t.relayed {
            return;
        }
        t.relayed = true;
        // Resume the task's trace (relay runs from a timer, so the
        // message-borne context is long cleared).
        ctx.trace_adopt(t.trace);
        if t.list.is_empty() {
            let done = self.tasks.remove(&token).expect("task vanished");
            self.tasks_done += 1;
            ctx.send(
                done.origin,
                RmMsg::BcastDone {
                    task: done.task,
                    job: done.job,
                    kind: done.kind,
                    reached: 0,
                    ok: true,
                },
            );
            return;
        }
        // FP-Tree construction: rearrange so suspects sit on leaves, then
        // relay by the ordinary grouping rule.
        let w = self.cfg.relay_width.max(2);
        // The arranged list is this relay's `Deliver` payload; building it
        // in a recycled buffer keeps the per-task allocation out of the
        // DES hot path.
        let mut arranged = NodeSlice::recycled_buf();
        rearrange_into(t.list.nodes(), &suspects, w, &mut arranged);
        let leaves = topology::leaf_positions(arranged.len(), w);
        self.fp_stats.trees += 1;
        self.fp_stats.total_nodes += arranged.len() as u64;
        for (pos, node) in arranged.iter().enumerate() {
            if suspects.contains(node) {
                self.fp_stats.suspects_seen += 1;
                if leaves[pos] {
                    self.fp_stats.suspects_on_leaves += 1;
                }
            }
        }
        let arranged = NodeSlice::new(arranged);
        let k = if arranged.len() < w {
            arranged.len()
        } else {
            w
        };
        let chunks = split_balanced(arranged.len(), k);
        t.expected = chunks.len() as u32;
        t.relayed_at = ctx.now();
        let (job, kind) = (t.job, t.kind);
        for (lo, len) in chunks {
            let head = arranged.nodes()[lo];
            ctx.open_socket_for(NodeId(head), self.cfg.conn_lifetime);
            ctx.send(
                NodeId(head),
                RmMsg::JobCtl {
                    job,
                    kind,
                    list: arranged.slice(lo + 1, lo + len),
                    width: w as u16,
                },
            );
        }
        let depth = topology::relay_depth(arranged.len(), w) as u64;
        ctx.set_timer(
            self.cfg.task_timeout * (depth + 1),
            token << TOKEN_KIND_BITS | DEADLINE_TIMER,
        );
    }

    fn finish_task(&mut self, ctx: &mut dyn Context<RmMsg>, token: u64, complete: bool) {
        let Some(t) = self.tasks.remove(&token) else {
            return;
        };
        self.tasks_done += 1;
        let service = ctx.now() - t.started;
        self.obs.observe(Hist::TaskServiceUs, service.as_micros());
        self.obs.span_from(
            t.started,
            ctx.now(),
            ctx.me().0,
            EventKind::TaskService,
            t.job,
            0,
        );
        ctx.charge_cpu(self.cfg.msg_cpu);
        ctx.send(
            t.origin,
            RmMsg::BcastDone {
                task: t.task,
                job: t.job,
                kind: t.kind,
                reached: t.reached,
                ok: complete,
            },
        );
    }
}

impl Actor<RmMsg> for SatelliteDaemon {
    fn on_start(&mut self, ctx: &mut dyn Context<RmMsg>) {
        ctx.alloc_virt(self.cfg.sat_base_virt as i64);
        ctx.alloc_real(self.cfg.sat_base_real as i64);
    }

    fn on_message(&mut self, ctx: &mut dyn Context<RmMsg>, from: NodeId, msg: RmMsg) {
        match msg {
            RmMsg::BcastTask {
                task,
                job,
                kind,
                list,
                width: _,
            } => {
                self.begin_task(ctx, from, task, job, kind, list);
            }
            RmMsg::CtlAck { job, kind, count } => {
                ctx.charge_cpu(self.cfg.msg_cpu);
                let found = self
                    .tasks
                    .iter_mut()
                    .find(|(_, t)| t.job == job && t.kind == kind && t.relayed);
                if let Some((&token, t)) = found {
                    t.received += 1;
                    t.reached += count;
                    if t.received >= t.expected {
                        self.finish_task(ctx, token, true);
                    }
                }
            }
            RmMsg::SatHeartbeat => {
                ctx.charge_cpu(self.cfg.msg_cpu);
                ctx.send(
                    from,
                    RmMsg::SatHeartbeatAck {
                        state: self.state().wire_id(),
                    },
                );
            }
            RmMsg::Shutdown => {
                // Abandon in-flight work; the master's timeouts reassign it.
                self.tasks.clear();
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn Context<RmMsg>, token: u64) {
        let t = token >> TOKEN_KIND_BITS;
        match token & ((1 << TOKEN_KIND_BITS) - 1) {
            START_TIMER => self.relay(ctx, t),
            DEADLINE_TIMER
                // Some subtrees never acknowledged (failed heads below the
                // first layer); report the partial coverage.
                if self.tasks.contains_key(&t) => {
                    let pt = &self.tasks[&t];
                    if let Some(tc) = pt.trace {
                        // The wait on missing acks is timeout backoff.
                        ctx.trace_backoff(&tc, pt.relayed_at);
                        ctx.trace_adopt(Some(tc));
                    }
                    self.finish_task(ctx, t, false);
                }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emu::{SimCluster, SimConfig};
    use monitoring::NullPredictor;
    use rm::slave::{SlaveConfig, SlaveDaemon, SlaveHeartbeat};

    enum Node {
        Master(Vec<RmMsg>),
        Sat(SatelliteDaemon),
        Slave(SlaveDaemon),
    }

    impl Actor<RmMsg> for Node {
        fn on_start(&mut self, ctx: &mut dyn Context<RmMsg>) {
            match self {
                Node::Master(_) => {}
                Node::Sat(s) => s.on_start(ctx),
                Node::Slave(s) => s.on_start(ctx),
            }
        }
        fn on_message(&mut self, ctx: &mut dyn Context<RmMsg>, from: NodeId, msg: RmMsg) {
            match self {
                Node::Master(log) => log.push(msg),
                Node::Sat(s) => s.on_message(ctx, from, msg),
                Node::Slave(s) => s.on_message(ctx, from, msg),
            }
        }
        fn on_timer(&mut self, ctx: &mut dyn Context<RmMsg>, token: u64) {
            match self {
                Node::Master(_) => {}
                Node::Sat(s) => s.on_timer(ctx, token),
                Node::Slave(s) => s.on_timer(ctx, token),
            }
        }
    }

    fn small_cfg() -> EslurmConfig {
        EslurmConfig {
            eq1_width: 16,
            relay_width: 4,
            ..Default::default()
        }
    }

    /// Node 0 = master log, node 1 = satellite, 2..=n+1 slaves.
    fn cluster(n_slaves: usize, cfg: EslurmConfig) -> SimCluster<RmMsg, Node> {
        let mut actors = vec![
            Node::Master(Vec::new()),
            Node::Sat(SatelliteDaemon::new(
                cfg,
                Some(Arc::new(Mutex::new(NullPredictor))),
            )),
        ];
        for _ in 0..n_slaves {
            actors.push(Node::Slave(SlaveDaemon::new(SlaveConfig {
                heartbeat: SlaveHeartbeat::None,
                ..Default::default()
            })));
        }
        SimCluster::new(actors, SimConfig::new(n_slaves + 2, 17))
    }

    #[test]
    fn satellite_relays_and_reports_done() {
        let n = 60;
        let mut c = cluster(n, small_cfg());
        let list: Vec<u32> = (2..2 + n as u32).collect();
        c.inject(
            SimTime::from_millis(1),
            NodeId::MASTER,
            NodeId(1),
            RmMsg::BcastTask {
                task: 5,
                job: 9,
                kind: CtlKind::Launch,
                list: NodeSlice::new(list),
                width: 4,
            },
        );
        c.run_to_quiescence();
        let Node::Master(log) = c.actor(NodeId::MASTER) else {
            panic!()
        };
        assert_eq!(log.len(), 1);
        match &log[0] {
            RmMsg::BcastDone {
                task: 5,
                job: 9,
                kind: CtlKind::Launch,
                reached,
                ok: true,
            } => {
                assert_eq!(*reached, n as u32);
            }
            other => panic!("unexpected reply {other:?}"),
        }
        let Node::Sat(sat) = c.actor(NodeId(1)) else {
            panic!()
        };
        assert_eq!(sat.tasks_done, 1);
        assert_eq!(sat.fp_stats.trees, 1);
    }

    #[test]
    fn empty_task_acks_immediately() {
        let mut c = cluster(2, small_cfg());
        c.inject(
            SimTime::from_millis(1),
            NodeId::MASTER,
            NodeId(1),
            RmMsg::BcastTask {
                task: 1,
                job: 2,
                kind: CtlKind::Ping,
                list: NodeSlice::empty(),
                width: 4,
            },
        );
        c.run_to_quiescence();
        let Node::Master(log) = c.actor(NodeId::MASTER) else {
            panic!()
        };
        assert!(matches!(
            log[0],
            RmMsg::BcastDone {
                ok: true,
                reached: 0,
                ..
            }
        ));
    }

    #[test]
    fn heartbeat_reports_busy_while_processing() {
        let mut c = cluster(30, small_cfg());
        let list: Vec<u32> = (2..32).collect();
        c.inject(
            SimTime::from_millis(1),
            NodeId::MASTER,
            NodeId(1),
            RmMsg::BcastTask {
                task: 1,
                job: 1,
                kind: CtlKind::Launch,
                list: NodeSlice::new(list),
                width: 4,
            },
        );
        // Heartbeat lands while the task is still being processed.
        c.inject(
            SimTime::from_millis(2),
            NodeId::MASTER,
            NodeId(1),
            RmMsg::SatHeartbeat,
        );
        c.run_to_quiescence();
        let Node::Master(log) = c.actor(NodeId::MASTER) else {
            panic!()
        };
        let states: Vec<u8> = log
            .iter()
            .filter_map(|m| match m {
                RmMsg::SatHeartbeatAck { state } => Some(*state),
                _ => None,
            })
            .collect();
        assert_eq!(states, vec![SatState::Busy.wire_id()]);
    }

    #[test]
    fn failed_subtree_reported_partial() {
        let n = 40;
        let mut actors = vec![
            Node::Master(Vec::new()),
            Node::Sat(SatelliteDaemon::new(small_cfg(), None)),
        ];
        for _ in 0..n {
            actors.push(Node::Slave(SlaveDaemon::new(SlaveConfig {
                heartbeat: SlaveHeartbeat::None,
                ..Default::default()
            })));
        }
        let faults = emu::FaultPlan::from_outages(
            n + 2,
            vec![emu::Outage {
                node: NodeId(6),
                down_at: SimTime::ZERO,
                up_at: SimTime::from_secs(1_000_000),
            }],
        );
        let cfg = SimConfig {
            faults,
            ..SimConfig::new(n + 2, 5)
        };
        let mut c = SimCluster::new(actors, cfg);
        let list: Vec<u32> = (2..2 + n as u32).collect();
        c.inject(
            SimTime::from_millis(1),
            NodeId::MASTER,
            NodeId(1),
            RmMsg::BcastTask {
                task: 3,
                job: 4,
                kind: CtlKind::Launch,
                list: NodeSlice::new(list),
                width: 4,
            },
        );
        c.run_until(SimTime::from_secs(120));
        let Node::Master(log) = c.actor(NodeId::MASTER) else {
            panic!()
        };
        assert_eq!(log.len(), 1);
        match &log[0] {
            RmMsg::BcastDone { reached, .. } => {
                assert!(*reached < n as u32, "reached {reached}");
                assert!(*reached >= n as u32 - 6, "reached {reached}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn predictor_suspects_counted_on_leaves() {
        let n = 50;
        let faults = emu::FaultPlan::from_outages(
            n + 2,
            vec![emu::Outage {
                node: NodeId(10),
                down_at: SimTime::from_secs(30),
                up_at: SimTime::from_secs(90),
            }],
        );
        let predictor =
            monitoring::OraclePredictor::new(faults.clone(), SimSpan::from_secs(300), 1);
        let mut actors = vec![
            Node::Master(Vec::new()),
            Node::Sat(SatelliteDaemon::new(
                small_cfg(),
                Some(Arc::new(Mutex::new(predictor))),
            )),
        ];
        for _ in 0..n {
            actors.push(Node::Slave(SlaveDaemon::new(SlaveConfig {
                heartbeat: SlaveHeartbeat::None,
                ..Default::default()
            })));
        }
        // The fault plan only feeds the predictor here — the node itself
        // stays up so the broadcast completes fully.
        let mut c = SimCluster::new(actors, SimConfig::new(n + 2, 5));
        let list: Vec<u32> = (2..2 + n as u32).collect();
        c.inject(
            SimTime::from_millis(1),
            NodeId::MASTER,
            NodeId(1),
            RmMsg::BcastTask {
                task: 1,
                job: 1,
                kind: CtlKind::Launch,
                list: NodeSlice::new(list),
                width: 4,
            },
        );
        c.run_to_quiescence();
        let Node::Sat(sat) = c.actor(NodeId(1)) else {
            panic!()
        };
        assert_eq!(sat.fp_stats.suspects_seen, 1);
        assert_eq!(sat.fp_stats.suspects_on_leaves, 1);
        assert_eq!(sat.fp_stats.placement_ratio(), 1.0);
    }
}
