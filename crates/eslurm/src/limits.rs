//! The predictive walltime-limit policy: ESlurm's runtime-estimation
//! framework feeding the backfill scheduler (the +8.7 % utilization
//! contribution the paper attributes to runtime estimation in §VII-D).

use estimate::{EstimatorConfig, RuntimeEstimator};
use obs::audit::{EstSource, EstimateRef};
use sched::prelude::{LimitInfo, LimitPolicy};
use simclock::{SimSpan, SimTime};
use workload::Job;

/// Walltime limits from the ESlurm estimation framework.
///
/// The deployed decision logic applies: the model estimate (slack-adjusted)
/// is used when the user gave no estimate or when the matched cluster's
/// AEA clears the gate; otherwise the user's request stands. A safety
/// floor prevents degenerate one-second limits.
pub struct PredictiveLimit {
    estimator: RuntimeEstimator,
    /// Minimum limit handed to the scheduler.
    pub floor: SimSpan,
    /// Kill-safety margin applied on top of model estimates: the job is
    /// killed only beyond `margin × estimate`, while backfill still plans
    /// with the much tighter estimate than user requests provide.
    pub margin: f64,
    /// Floor for limits on jobs with no user estimate: a kill there is
    /// pure waste, so the limit never drops below this even when the model
    /// predicts a short run (still 4x tighter for planning than the 24 h
    /// partition default it replaces).
    pub no_user_floor: SimSpan,
    /// Limit used when neither a model nor a user estimate exists.
    pub default: SimSpan,
    /// Jobs whose limit came from the model.
    pub model_limits: u64,
    /// Jobs whose limit came from the user request.
    pub user_limits: u64,
}

impl PredictiveLimit {
    /// A policy around a fresh estimation framework.
    pub fn new(config: EstimatorConfig) -> Self {
        PredictiveLimit {
            estimator: RuntimeEstimator::new(config),
            floor: SimSpan::from_secs(120),
            margin: 2.0,
            no_user_floor: SimSpan::from_hours(6),
            default: SimSpan::from_hours(24),
            model_limits: 0,
            user_limits: 0,
        }
    }

    /// Access the wrapped framework (for inspecting AEA etc.).
    pub fn estimator(&self) -> &RuntimeEstimator {
        &self.estimator
    }
}

impl LimitPolicy for PredictiveLimit {
    fn limit(&mut self, job: &Job) -> SimSpan {
        self.limit_info(job).limit
    }

    fn limit_info(&mut self, job: &Job) -> LimitInfo {
        self.estimator.maybe_retrain(job.submit);
        match self.estimator.estimate(job) {
            Some(e) => {
                match e.source {
                    estimate::EstimateSource::Model => {
                        self.model_limits += 1;
                        // Never set a limit below the user's own request:
                        // a kill can then only happen where the user limit
                        // would have killed too, so the job-failure rate
                        // strictly improves while planning still benefits
                        // from the (usually much tighter) model estimate.
                        // Jobs submitted without any user estimate get a
                        // doubled margin: there is no user limit to fall
                        // back on, and a kill there is pure waste (the
                        // alternative was a 24 h partition default anyway).
                        let (user, margin) = match job.user_estimate {
                            Some(u) => (u, self.margin),
                            None => (self.no_user_floor, self.margin * 2.0),
                        };
                        LimitInfo {
                            limit: e.runtime.mul_f64(margin).max(user).max(self.floor),
                            est: EstimateRef::new(e.runtime.as_micros(), EstSource::Model)
                                .with_cluster(e.cluster.map(|c| c as u32)),
                        }
                    }
                    estimate::EstimateSource::User => {
                        self.user_limits += 1;
                        LimitInfo {
                            limit: e.runtime.max(self.floor),
                            est: EstimateRef::new(e.runtime.as_micros(), EstSource::User),
                        }
                    }
                }
            }
            None => LimitInfo {
                limit: self.default,
                est: EstimateRef::new(self.default.as_micros(), EstSource::Default),
            },
        }
    }

    fn resubmit_info(&mut self, job: &Job, prev: LimitInfo, _attempt: u32) -> LimitInfo {
        if prev.est.source == EstSource::Model {
            // The model chronically underestimated this job: abandon it and
            // fall back to the user's request (or the partition default),
            // never below double the killed limit so the resubmission
            // ladder still terminates.
            let (fallback, source) = match job.user_estimate {
                Some(u) => (u, EstSource::User),
                None => (self.default, EstSource::Default),
            };
            LimitInfo {
                limit: fallback.max(prev.limit * 2),
                est: EstimateRef::new(fallback.as_micros(), source),
            }
        } else {
            LimitInfo {
                limit: prev.limit * 2,
                est: prev.est,
            }
        }
    }

    fn on_complete(&mut self, job: &Job, _now: SimTime) {
        self.estimator.record_completion(job);
    }

    fn name(&self) -> String {
        "eslurm-predictive".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched::prelude::{simulate, BackfillConfig, UserLimit};
    use workload::{JobId, TraceConfig, UserId};

    fn job(est: Option<u64>, actual: u64) -> Job {
        Job {
            id: JobId(0),
            name: "j".into(),
            user: UserId(0),
            nodes: 1,
            cores_per_node: 1,
            submit: SimTime::ZERO,
            user_estimate: est.map(SimSpan::from_secs),
            actual_runtime: SimSpan::from_secs(actual),
        }
    }

    #[test]
    fn resubmit_abandons_a_chronic_model_underestimate() {
        let mut policy = PredictiveLimit::new(EstimatorConfig::default());
        let prev = LimitInfo {
            limit: SimSpan::from_secs(100),
            est: EstimateRef::new(50_000_000, EstSource::Model).with_cluster(Some(3)),
        };
        // With a user estimate: fall back to the user's request.
        let next = policy.resubmit_info(&job(Some(900), 1000), prev, 1);
        assert_eq!(next.est.source, EstSource::User);
        assert_eq!(next.limit, SimSpan::from_secs(900));
        // Without one: fall back to the partition default.
        let next = policy.resubmit_info(&job(None, 1000), prev, 1);
        assert_eq!(next.est.source, EstSource::Default);
        assert_eq!(next.limit, policy.default);
        // The ladder never shrinks below double the killed limit.
        let prev_high = LimitInfo {
            limit: SimSpan::from_secs(600),
            ..prev
        };
        let next = policy.resubmit_info(&job(Some(900), 1000), prev_high, 1);
        assert_eq!(next.limit, SimSpan::from_secs(1200));
        // Non-model kills keep the classic doubling and attribution.
        let user_prev = LimitInfo {
            limit: SimSpan::from_secs(100),
            est: EstimateRef::new(100_000_000, EstSource::User),
        };
        let next = policy.resubmit_info(&job(Some(100), 1000), user_prev, 1);
        assert_eq!(next.est.source, EstSource::User);
        assert_eq!(next.limit, SimSpan::from_secs(200));
    }

    #[test]
    fn predictive_limits_learn_from_completions() {
        let jobs = TraceConfig::small(1200, 31).generate();
        let mut policy = PredictiveLimit::new(EstimatorConfig::default());
        let report = simulate(&jobs, &mut policy, &BackfillConfig::new(512));
        assert!(report.completed > 1000, "completed {}", report.completed);
        assert!(
            policy.model_limits + policy.user_limits > 0,
            "policy never produced a limit"
        );
        assert!(policy.model_limits > 0, "model never trusted");
    }

    #[test]
    fn predictive_wastes_less_reservation_than_user_limits() {
        // With heavy overestimation, user limits block backfill; the
        // predictive policy's tighter limits should not do worse on wait.
        let jobs = TraceConfig::small(2500, 33).generate();
        let cfg = BackfillConfig::new(128);
        let user = simulate(&jobs, &mut UserLimit::default(), &cfg);
        let mut policy = PredictiveLimit::new(EstimatorConfig::default());
        let predictive = simulate(&jobs, &mut policy, &cfg);
        assert!(
            predictive.avg_wait() <= user.avg_wait().mul_f64(1.1),
            "predictive wait {} vs user {}",
            predictive.avg_wait(),
            user.avg_wait()
        );
        // Kills stay bounded thanks to the slack + gate.
        assert!(
            (predictive.killed as f64) < 0.25 * jobs.len() as f64,
            "kills {}",
            predictive.killed
        );
    }
}
