//! The predictive walltime-limit policy: ESlurm's runtime-estimation
//! framework feeding the backfill scheduler (the +8.7 % utilization
//! contribution the paper attributes to runtime estimation in §VII-D).

use estimate::{EstimatorConfig, RuntimeEstimator};
use sched::LimitPolicy;
use simclock::{SimSpan, SimTime};
use workload::Job;

/// Walltime limits from the ESlurm estimation framework.
///
/// The deployed decision logic applies: the model estimate (slack-adjusted)
/// is used when the user gave no estimate or when the matched cluster's
/// AEA clears the gate; otherwise the user's request stands. A safety
/// floor prevents degenerate one-second limits.
pub struct PredictiveLimit {
    estimator: RuntimeEstimator,
    /// Minimum limit handed to the scheduler.
    pub floor: SimSpan,
    /// Kill-safety margin applied on top of model estimates: the job is
    /// killed only beyond `margin × estimate`, while backfill still plans
    /// with the much tighter estimate than user requests provide.
    pub margin: f64,
    /// Floor for limits on jobs with no user estimate: a kill there is
    /// pure waste, so the limit never drops below this even when the model
    /// predicts a short run (still 4x tighter for planning than the 24 h
    /// partition default it replaces).
    pub no_user_floor: SimSpan,
    /// Limit used when neither a model nor a user estimate exists.
    pub default: SimSpan,
    /// Jobs whose limit came from the model.
    pub model_limits: u64,
    /// Jobs whose limit came from the user request.
    pub user_limits: u64,
}

impl PredictiveLimit {
    /// A policy around a fresh estimation framework.
    pub fn new(config: EstimatorConfig) -> Self {
        PredictiveLimit {
            estimator: RuntimeEstimator::new(config),
            floor: SimSpan::from_secs(120),
            margin: 2.0,
            no_user_floor: SimSpan::from_hours(6),
            default: SimSpan::from_hours(24),
            model_limits: 0,
            user_limits: 0,
        }
    }

    /// Access the wrapped framework (for inspecting AEA etc.).
    pub fn estimator(&self) -> &RuntimeEstimator {
        &self.estimator
    }
}

impl LimitPolicy for PredictiveLimit {
    fn limit(&mut self, job: &Job) -> SimSpan {
        self.estimator.maybe_retrain(job.submit);
        match self.estimator.estimate(job) {
            Some(e) => {
                match e.source {
                    estimate::EstimateSource::Model => {
                        self.model_limits += 1;
                        // Never set a limit below the user's own request:
                        // a kill can then only happen where the user limit
                        // would have killed too, so the job-failure rate
                        // strictly improves while planning still benefits
                        // from the (usually much tighter) model estimate.
                        // Jobs submitted without any user estimate get a
                        // doubled margin: there is no user limit to fall
                        // back on, and a kill there is pure waste (the
                        // alternative was a 24 h partition default anyway).
                        let (user, margin) = match job.user_estimate {
                            Some(u) => (u, self.margin),
                            None => (self.no_user_floor, self.margin * 2.0),
                        };
                        e.runtime.mul_f64(margin).max(user).max(self.floor)
                    }
                    estimate::EstimateSource::User => {
                        self.user_limits += 1;
                        e.runtime.max(self.floor)
                    }
                }
            }
            None => self.default,
        }
    }

    fn on_complete(&mut self, job: &Job, _now: SimTime) {
        self.estimator.record_completion(job);
    }

    fn name(&self) -> String {
        "eslurm-predictive".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched::{simulate, BackfillConfig, UserLimit};
    use workload::TraceConfig;

    #[test]
    fn predictive_limits_learn_from_completions() {
        let jobs = TraceConfig::small(1200, 31).generate();
        let mut policy = PredictiveLimit::new(EstimatorConfig::default());
        let report = simulate(&jobs, &mut policy, &BackfillConfig::new(512));
        assert!(report.completed > 1000, "completed {}", report.completed);
        assert!(
            policy.model_limits + policy.user_limits > 0,
            "policy never produced a limit"
        );
        assert!(policy.model_limits > 0, "model never trusted");
    }

    #[test]
    fn predictive_wastes_less_reservation_than_user_limits() {
        // With heavy overestimation, user limits block backfill; the
        // predictive policy's tighter limits should not do worse on wait.
        let jobs = TraceConfig::small(2500, 33).generate();
        let cfg = BackfillConfig::new(128);
        let user = simulate(&jobs, &mut UserLimit::default(), &cfg);
        let mut policy = PredictiveLimit::new(EstimatorConfig::default());
        let predictive = simulate(&jobs, &mut policy, &cfg);
        assert!(
            predictive.avg_wait() <= user.avg_wait().mul_f64(1.1),
            "predictive wait {} vs user {}",
            predictive.avg_wait(),
            user.avg_wait()
        );
        // Kills stay bounded thanks to the slack + gate.
        assert!(
            (predictive.killed as f64) < 0.25 * jobs.len() as f64,
            "kills {}",
            predictive.killed
        );
    }
}
