//! The satellite-node state machine (paper Fig. 2 / Table II), maintained
//! by the master for every satellite in its pool.

use simclock::{SimSpan, SimTime};

/// Satellite states (Table II).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SatState {
    /// State not yet established.
    Unknown,
    /// Operating as expected; eligible for broadcast tasks.
    Running,
    /// Currently processing broadcast tasks.
    Busy,
    /// Failed; awaiting recovery or timeout.
    Fault,
    /// Shut down; requires administrator intervention.
    Down,
}

impl SatState {
    /// Stable wire id for heartbeat replies.
    pub fn wire_id(self) -> u8 {
        match self {
            SatState::Unknown => 0,
            SatState::Running => 1,
            SatState::Busy => 2,
            SatState::Fault => 3,
            SatState::Down => 4,
        }
    }

    /// Inverse of [`SatState::wire_id`].
    pub fn from_wire(id: u8) -> SatState {
        match id {
            1 => SatState::Running,
            2 => SatState::Busy,
            3 => SatState::Fault,
            4 => SatState::Down,
            _ => SatState::Unknown,
        }
    }
}

/// Events driving the state machine (Table II).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SatEvent {
    /// A broadcast task was assigned to the satellite.
    TaskAssigned,
    /// The satellite processed a broadcast task successfully.
    BtSuccess,
    /// The satellite failed to process a broadcast task.
    BtFailure,
    /// Heartbeat answered: the satellite is healthy.
    HbSuccess,
    /// Heartbeat missed: the satellite is abnormal.
    HbFailure,
    /// Administrator shutdown command.
    Shutdown,
}

/// One satellite's state as tracked by the master.
#[derive(Clone, Copy, Debug)]
pub struct SatFsm {
    state: SatState,
    /// When the satellite entered FAULT (for the TIMEOUT transition).
    fault_since: Option<SimTime>,
    /// FAULT → DOWN after this long (paper: ≥ 20 min).
    pub fault_timeout: SimSpan,
}

impl SatFsm {
    /// A fresh FSM in UNKNOWN with the paper's 20-minute fault timeout.
    pub fn new() -> Self {
        SatFsm {
            state: SatState::Unknown,
            fault_since: None,
            fault_timeout: SimSpan::from_secs(20 * 60),
        }
    }

    /// Current state, applying the FAULT-timeout transition lazily.
    pub fn state(&self, now: SimTime) -> SatState {
        if self.state == SatState::Fault {
            if let Some(since) = self.fault_since {
                if now.since(since) >= self.fault_timeout {
                    return SatState::Down;
                }
            }
        }
        self.state
    }

    /// Whether the satellite may be assigned broadcast work.
    pub fn is_available(&self, now: SimTime) -> bool {
        matches!(self.state(now), SatState::Running)
    }

    /// Apply an event at `now`; returns the resulting state.
    pub fn apply(&mut self, event: SatEvent, now: SimTime) -> SatState {
        // Materialize a pending FAULT→DOWN first.
        if self.state(now) == SatState::Down {
            self.state = SatState::Down;
        }
        let next = match (self.state, event) {
            // DOWN is terminal without administrator action.
            (SatState::Down, _) => SatState::Down,
            (_, SatEvent::Shutdown) => SatState::Down,
            (_, SatEvent::HbFailure) => SatState::Fault,
            (_, SatEvent::BtFailure) => SatState::Fault,
            (SatState::Fault, SatEvent::HbSuccess) => SatState::Running,
            (SatState::Unknown, SatEvent::HbSuccess) => SatState::Running,
            (SatState::Running, SatEvent::TaskAssigned) => SatState::Busy,
            (SatState::Busy, SatEvent::BtSuccess) => SatState::Running,
            (s, SatEvent::HbSuccess) => s, // healthy, stay put (Busy stays Busy)
            (s, SatEvent::BtSuccess) => {
                // Stray success (e.g. after reassignment) keeps the state.
                if s == SatState::Busy {
                    SatState::Running
                } else {
                    s
                }
            }
            (s, SatEvent::TaskAssigned) => s, // only RUNNING satellites get work
        };
        if next == SatState::Fault && self.state != SatState::Fault {
            self.fault_since = Some(now);
        }
        if next != SatState::Fault {
            self.fault_since = None;
        }
        self.state = next;
        next
    }

    /// Administrator intervention: bring a DOWN satellite back to UNKNOWN
    /// (it must prove health before receiving work again).
    pub fn admin_reset(&mut self) {
        self.state = SatState::Unknown;
        self.fault_since = None;
    }
}

impl Default for SatFsm {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn boot_sequence_unknown_to_running() {
        let mut f = SatFsm::new();
        assert_eq!(f.state(t(0)), SatState::Unknown);
        assert!(!f.is_available(t(0)));
        f.apply(SatEvent::HbSuccess, t(1));
        assert_eq!(f.state(t(1)), SatState::Running);
        assert!(f.is_available(t(1)));
    }

    #[test]
    fn task_cycle_running_busy_running() {
        let mut f = SatFsm::new();
        f.apply(SatEvent::HbSuccess, t(1));
        f.apply(SatEvent::TaskAssigned, t(2));
        assert_eq!(f.state(t(2)), SatState::Busy);
        assert!(!f.is_available(t(2)));
        f.apply(SatEvent::BtSuccess, t(3));
        assert_eq!(f.state(t(3)), SatState::Running);
    }

    #[test]
    fn bt_failure_faults_then_recovers_on_heartbeat() {
        let mut f = SatFsm::new();
        f.apply(SatEvent::HbSuccess, t(1));
        f.apply(SatEvent::TaskAssigned, t(2));
        f.apply(SatEvent::BtFailure, t(3));
        assert_eq!(f.state(t(3)), SatState::Fault);
        f.apply(SatEvent::HbSuccess, t(10));
        assert_eq!(f.state(t(10)), SatState::Running);
    }

    #[test]
    fn prolonged_fault_times_out_to_down() {
        let mut f = SatFsm::new();
        f.apply(SatEvent::HbSuccess, t(1));
        f.apply(SatEvent::HbFailure, t(2));
        assert_eq!(f.state(t(2)), SatState::Fault);
        // 19 minutes: still FAULT.
        assert_eq!(f.state(t(2 + 19 * 60)), SatState::Fault);
        // 20 minutes: DOWN, and permanently so.
        assert_eq!(f.state(t(2 + 20 * 60)), SatState::Down);
        f.apply(SatEvent::HbSuccess, t(2 + 21 * 60));
        assert_eq!(f.state(t(2 + 21 * 60)), SatState::Down);
    }

    #[test]
    fn shutdown_is_terminal_until_admin_reset() {
        let mut f = SatFsm::new();
        f.apply(SatEvent::HbSuccess, t(1));
        f.apply(SatEvent::Shutdown, t(2));
        assert_eq!(f.state(t(2)), SatState::Down);
        f.apply(SatEvent::HbSuccess, t(3));
        assert_eq!(f.state(t(3)), SatState::Down);
        f.admin_reset();
        assert_eq!(f.state(t(4)), SatState::Unknown);
        f.apply(SatEvent::HbSuccess, t(5));
        assert!(f.is_available(t(5)));
    }

    #[test]
    fn unknown_satellites_get_no_work() {
        let mut f = SatFsm::new();
        f.apply(SatEvent::TaskAssigned, t(1));
        assert_eq!(f.state(t(1)), SatState::Unknown);
    }

    #[test]
    fn wire_round_trip() {
        for s in [
            SatState::Unknown,
            SatState::Running,
            SatState::Busy,
            SatState::Fault,
            SatState::Down,
        ] {
            assert_eq!(SatState::from_wire(s.wire_id()), s);
        }
    }
}
