//! ESlurm deployment configuration and Eq. 1 satellite allocation.

use simclock::SimSpan;

/// Configuration of an ESlurm deployment.
#[derive(Clone, Debug)]
pub struct EslurmConfig {
    /// Number of satellite nodes configured (`m` in Eq. 1).
    pub n_satellites: usize,
    /// `w` in Eq. 1: the share of nodes that warrants one satellite
    /// (the paper settles on ~one satellite per several thousand nodes).
    pub eq1_width: usize,
    /// Grouping width of the relay trees satellites and slaves build
    /// (bounds a satellite's concurrent downstream connections).
    pub relay_width: usize,
    /// Compute-node heartbeat sweep period (collected via satellites).
    pub hb_sweep_interval: SimSpan,
    /// Master → satellite health-check period.
    pub sat_hb_interval: SimSpan,
    /// How long the master waits for a satellite's `BcastDone` before
    /// declaring BT-failure and reassigning.
    pub task_timeout: SimSpan,
    /// Reassignments of the same task before the master takes over
    /// (paper default: 2).
    pub reassign_threshold: u32,
    /// Master CPU per protocol message.
    pub msg_cpu: SimSpan,
    /// Master CPU per scheduling decision.
    pub sched_cpu: SimSpan,
    /// Master CPU to prepare/dispatch one broadcast task (serializing the
    /// sub-list, credentials, payload).
    pub task_prep_cpu: SimSpan,
    /// Satellite processing per node in a task (FP-Tree construction +
    /// payload marshalling); this is the cost that favours more satellites.
    pub sat_per_node_cpu: SimSpan,
    /// Master baseline virtual / resident memory.
    pub base_virt: u64,
    /// Master baseline resident memory.
    pub base_real: u64,
    /// Master memory pinned per compute node (virtual, resident).
    pub per_node_virt: u64,
    /// Master resident memory per compute node.
    pub per_node_real: u64,
    /// Master memory pinned per active job (virtual, resident).
    pub per_job_virt: u64,
    /// Master resident memory per active job.
    pub per_job_real: u64,
    /// Job-history bytes retained after completion.
    pub job_record_leak: u64,
    /// Satellite baseline virtual memory (Table VI shows ~10 GB).
    pub sat_base_virt: u64,
    /// Satellite baseline resident memory.
    pub sat_base_real: u64,
    /// Satellite resident bytes per node of its current largest task
    /// (relay buffers; high-water semantics).
    pub sat_per_task_node_real: u64,
    /// Ephemeral connection lifetime.
    pub conn_lifetime: SimSpan,
}

const MIB: u64 = 1 << 20;
const GIB: u64 = 1 << 30;

impl Default for EslurmConfig {
    fn default() -> Self {
        EslurmConfig {
            n_satellites: 2,
            eq1_width: 400,
            relay_width: 64,
            hb_sweep_interval: SimSpan::from_secs(120),
            sat_hb_interval: SimSpan::from_secs(10),
            task_timeout: SimSpan::from_secs(8),
            reassign_threshold: 2,
            msg_cpu: SimSpan::from_micros(50),
            sched_cpu: SimSpan::from_millis(2),
            task_prep_cpu: SimSpan::from_millis(5),
            sat_per_node_cpu: SimSpan::from_micros(100),
            base_virt: GIB + 200 * MIB,
            base_real: 40 * MIB,
            per_node_virt: 64 * 1024,
            per_node_real: 4 * 1024,
            per_job_virt: MIB,
            per_job_real: 64 * 1024,
            job_record_leak: 8 * 1024,
            sat_base_virt: 10 * GIB,
            sat_base_real: 40 * MIB,
            sat_per_task_node_real: 5 * 1024,
            conn_lifetime: SimSpan::from_millis(500),
        }
    }
}

impl EslurmConfig {
    /// Scale the satellite pool.
    pub fn with_satellites(mut self, m: usize) -> Self {
        self.n_satellites = m.max(1);
        self
    }
}

/// Eq. 1: the number of satellites used to relay a broadcast to `s`
/// participating nodes, given tree width `w` and pool size `m`.
pub fn satellites_needed(s: usize, w: usize, m: usize) -> usize {
    assert!(w > 0 && m > 0);
    if s <= w {
        1
    } else if s >= m * w {
        m
    } else {
        s.div_ceil(w)
    }
}

/// Split `0..len` into `n` balanced contiguous ranges (the per-satellite
/// sub-lists).
pub fn partition(len: usize, n: usize) -> Vec<(usize, usize)> {
    topology::split_balanced(len, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_branches() {
        // s <= w: one satellite.
        assert_eq!(satellites_needed(10, 500, 20), 1);
        assert_eq!(satellites_needed(500, 500, 20), 1);
        // middle: ceil(s/w).
        assert_eq!(satellites_needed(501, 500, 20), 2);
        assert_eq!(satellites_needed(2500, 500, 20), 5);
        // s >= m*w: all satellites.
        assert_eq!(satellites_needed(10_000, 500, 20), 20);
        assert_eq!(satellites_needed(9_999, 500, 20), 20);
    }

    #[test]
    fn eq1_never_exceeds_pool() {
        for s in [1usize, 10, 100, 1000, 50_000] {
            for m in [1usize, 2, 10, 50] {
                let n = satellites_needed(s, 500, m);
                assert!(n >= 1 && n <= m, "s={s} m={m} n={n}");
            }
        }
    }

    #[test]
    fn partition_is_balanced_cover() {
        let parts = partition(20_480, 7);
        assert_eq!(parts.len(), 7);
        let total: usize = parts.iter().map(|(_, l)| l).sum();
        assert_eq!(total, 20_480);
        let (min, max) = parts
            .iter()
            .fold((usize::MAX, 0), |(mn, mx), (_, l)| (mn.min(*l), mx.max(*l)));
        assert!(max - min <= 1);
    }
}
