//! # eslurm-core
//!
//! **ESlurm**: the distributed resource manager of *Towards Scalable
//! Resource Management for Supercomputers* (SC'22), reproduced in Rust on
//! an emulated cluster.
//!
//! The crate implements the paper's three contributions:
//!
//! * the **distributed RM architecture** (§III): a master that keeps the
//!   global resource/job view but offloads all large-scale communication
//!   to satellite nodes — dynamic satellite allocation (Eq. 1, [`config`]),
//!   round-robin mapping, the satellite state machine of Fig. 2/Table II
//!   ([`fsm`]), BT/HB failure detection, task reassignment, and master
//!   takeover ([`master`]);
//! * the **FP-Tree** (§IV): satellites construct failure-prediction-based
//!   communication trees from the monitoring substrate's suspect sets
//!   before every relay ([`satellite`], building on `eslurm-topology`);
//! * the **job-runtime-estimation framework** (§V) wired into the
//!   backfill scheduler as a walltime-limit policy ([`limits`], building
//!   on `eslurm-estimate` and `eslurm-sched`).
//!
//! [`system`] assembles complete emulated deployments (master +
//! satellites + compute nodes) for the paper's experiments.
//!
//! ```
//! use eslurm::{EslurmConfig, EslurmSystemBuilder};
//! use simclock::{SimSpan, SimTime};
//!
//! let cfg = EslurmConfig { n_satellites: 2, eq1_width: 16, relay_width: 8, ..Default::default() };
//! let mut sys = EslurmSystemBuilder::new(cfg, 64, 1).build();
//! sys.submit(SimTime::from_secs(1), 1, &(0..16).collect::<Vec<_>>(), SimSpan::from_secs(10));
//! sys.sim.run_until(SimTime::from_secs(60));
//! assert_eq!(sys.master().records.len(), 1);
//! ```

pub mod config;
pub mod fsm;
pub mod limits;
pub mod master;
pub mod satellite;
pub mod system;

pub use config::{satellites_needed, EslurmConfig};
pub use fsm::{SatEvent, SatFsm, SatState};
pub use limits::PredictiveLimit;
pub use master::{EslurmMaster, SweepRecord};
pub use satellite::{FpPlacementStats, SatelliteDaemon};
pub use system::{EslurmNode, EslurmSystem, EslurmSystemBuilder};

/// One-stop imports for examples, benches, and downstream experiments:
/// everything needed to assemble a cluster, drive it, and observe it,
/// without reaching into internal module paths.
pub mod prelude {
    pub use crate::config::{satellites_needed, EslurmConfig};
    pub use crate::fsm::{SatEvent, SatState};
    pub use crate::master::{EslurmMaster, SweepRecord};
    pub use crate::satellite::{FpPlacementStats, SatelliteDaemon};
    pub use crate::system::{EslurmNode, EslurmSystem, EslurmSystemBuilder};
    pub use emu::{Actor, Context, FaultPlan, FaultPlanBuilder, NodeId, Outage, SimConfig};
    pub use obs::{Counter, EventKind, Gauge, Hist, MetricsSummary, Recorder, TraceEvent};
    pub use rm::{CtlKind, NodeSlice, RmMsg};
    pub use simclock::{SimSpan, SimTime};
}
