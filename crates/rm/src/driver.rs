//! Harness glue: build an emulated cluster for a profile, inject job
//! streams, and read out the master's meters — the machinery behind the
//! Fig. 7 experiments.

use crate::master::CentralizedMaster;
use crate::profile::{HeartbeatMode, RmProfile};
use crate::proto::{NodeSlice, RmMsg};
use crate::slave::{SlaveConfig, SlaveDaemon, SlaveHeartbeat};
use emu::{Actor, Context, FaultPlan, NodeId, Sampling, SimCluster, SimConfig};
use obs::{tag_scope, EngineProfiler, MemProfiler, MemTag, Recorder, Sampler, SloEngine};
use rand::RngExt;
use sched::prelude::*;
use simclock::rng::stream_rng;
use simclock::{SimSpan, SimTime};

/// A node of a centralized-RM cluster.
pub enum RmNode {
    /// The master daemon (node 0).
    Master(CentralizedMaster),
    /// A compute-node daemon.
    Slave(SlaveDaemon),
}

impl Actor<RmMsg> for RmNode {
    fn on_start(&mut self, ctx: &mut dyn Context<RmMsg>) {
        let _mem = tag_scope(MemTag::Rm);
        match self {
            RmNode::Master(m) => m.on_start(ctx),
            RmNode::Slave(s) => s.on_start(ctx),
        }
    }
    fn on_message(&mut self, ctx: &mut dyn Context<RmMsg>, from: NodeId, msg: RmMsg) {
        let _mem = tag_scope(MemTag::Rm);
        match self {
            RmNode::Master(m) => m.on_message(ctx, from, msg),
            RmNode::Slave(s) => s.on_message(ctx, from, msg),
        }
    }
    fn on_timer(&mut self, ctx: &mut dyn Context<RmMsg>, token: u64) {
        let _mem = tag_scope(MemTag::Rm);
        match self {
            RmNode::Master(m) => m.on_timer(ctx, token),
            RmNode::Slave(s) => s.on_timer(ctx, token),
        }
    }
}

/// A built cluster plus conventions (master = node 0).
pub struct ClusterHarness {
    /// The running simulation.
    pub sim: SimCluster<RmMsg, RmNode>,
    /// Multi-tenant policy layers for scheduling runs over this cluster
    /// (see [`ClusterHarness::backfill_config`]).
    pub policies: SchedPolicies,
}

impl ClusterHarness {
    /// The master's actor state.
    pub fn master_actor(&self) -> &CentralizedMaster {
        match self.sim.actor(NodeId::MASTER) {
            RmNode::Master(m) => m,
            RmNode::Slave(_) => unreachable!("node 0 is always the master"),
        }
    }

    /// A [`BackfillConfig`] sized to this cluster's slave count with the
    /// builder's policy layers installed, mirroring
    /// `EslurmSystem::backfill_config`.
    pub fn backfill_config(&self) -> BackfillConfig {
        let mut cfg = BackfillConfig::new(self.sim.len().saturating_sub(1) as u32);
        cfg.policies = self.policies.clone();
        cfg
    }

    /// Submit a job to the master at `at`.
    pub fn submit(&mut self, at: SimTime, job: u64, nodes: Vec<u32>, runtime: SimSpan) {
        self.sim.inject(
            at,
            NodeId::MASTER,
            NodeId::MASTER,
            RmMsg::SubmitJob {
                job,
                nodes: NodeSlice::new(nodes),
                runtime_us: runtime.as_micros(),
            },
        );
    }

    /// A synthetic job stream for the resource-usage experiments:
    /// `rate_per_hour` jobs arriving Poisson-style, sizes log-uniform in
    /// `1..=max_nodes`, runtimes exponential with the given mean. Returns
    /// the number of jobs injected.
    pub fn submit_stream(
        &mut self,
        n_slaves: u32,
        horizon: SimSpan,
        rate_per_hour: f64,
        max_nodes: u32,
        mean_runtime: SimSpan,
        seed: u64,
    ) -> u64 {
        let mut rng = stream_rng(seed, 0x10B5);
        let mut t = 0.0f64;
        let mut job = 0u64;
        let rate = rate_per_hour / 3600.0;
        loop {
            t += simclock::rng::exponential(&mut rng, rate);
            if t >= horizon.as_secs_f64() {
                break;
            }
            job += 1;
            let max_exp = (max_nodes.min(n_slaves) as f64).log2();
            let nodes_count = 2f64.powf(rng.random::<f64>() * max_exp).round().max(1.0) as u32;
            let start = rng.random_range(1..=n_slaves - nodes_count.min(n_slaves - 1));
            let nodes: Vec<u32> = (start..start + nodes_count).collect();
            let runtime = SimSpan::from_secs_f64(
                simclock::rng::exponential(&mut rng, 1.0 / mean_runtime.as_secs_f64()).max(5.0),
            );
            self.submit(SimTime::from_secs_f64(t), job, nodes, runtime);
        }
        job
    }
}

/// Builder for centralized-RM clusters, mirroring `EslurmSystemBuilder`
/// so both stacks are constructed — and instrumented — the same way.
pub struct RmClusterBuilder {
    profile: RmProfile,
    n: usize,
    seed: u64,
    faults: Option<FaultPlan>,
    sample_until: Option<SimTime>,
    obs: Recorder,
    sampler: Sampler,
    policies: SchedPolicies,
    engine: EngineProfiler,
    slo: SloEngine,
    mem: MemProfiler,
}

impl RmClusterBuilder {
    /// Start building a cluster of `n` nodes (node 0 = master, 1..n =
    /// slaves) running `profile`.
    pub fn new(profile: RmProfile, n: usize) -> Self {
        RmClusterBuilder {
            profile,
            n,
            seed: 0,
            faults: None,
            sample_until: None,
            obs: Recorder::disabled(),
            sampler: Sampler::disabled(),
            policies: SchedPolicies::default(),
            engine: EngineProfiler::disabled(),
            slo: SloEngine::disabled(),
            mem: MemProfiler::disabled(),
        }
    }

    /// Install a partition set for scheduling runs over this cluster,
    /// exactly as `EslurmSystemBuilder::partitions` does for the
    /// distributed stack.
    pub fn partitions(mut self, partitions: PartitionSet) -> Self {
        self.policies.partitions = partitions;
        self
    }

    /// Install a fair-share ledger, exactly as
    /// `EslurmSystemBuilder::fairshare` does for the distributed stack.
    pub fn fairshare(mut self, fairshare: FairShareLedger) -> Self {
        self.policies.fairshare = fairshare;
        self
    }

    /// Install a priority composition, exactly as
    /// `EslurmSystemBuilder::priority` does for the distributed stack.
    pub fn priority(mut self, priority: MultifactorPriority) -> Self {
        self.policies.priority = priority;
        self
    }

    /// Master seed for the simulation's RNG streams.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Inject the given outage schedule (node 0 = master, 1..n = slaves).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Record 1 Hz meter samples for the master until `until`.
    pub fn sample_until(mut self, until: SimTime) -> Self {
        self.sample_until = Some(until);
        self
    }

    /// Record transport and daemon telemetry into `recorder`, exactly as
    /// `EslurmSystemBuilder::obs` does for the distributed stack.
    pub fn obs(mut self, recorder: Recorder) -> Self {
        self.obs = recorder;
        self
    }

    /// Feed footprint time series into `sampler` on the metering cadence
    /// (node 0 is named `master`), exactly as `EslurmSystemBuilder::sampler`
    /// does for the distributed stack.
    pub fn sampler(mut self, sampler: Sampler) -> Self {
        self.sampler = sampler;
        self
    }

    /// Profile the engine's wall-clock behaviour into `profiler`, exactly
    /// as `EslurmSystemBuilder::engine_profile` does for the distributed
    /// stack. Non-perturbing: outcomes and virtual-time exports are
    /// unchanged with the profiler on or off.
    pub fn engine_profile(mut self, profiler: EngineProfiler) -> Self {
        self.engine = profiler;
        self
    }

    /// Evaluate SLO specs online against this run's telemetry, exactly as
    /// `EslurmSystemBuilder::slo` does for the distributed stack. The
    /// engine ticks on the sampling cadence (configure `sample_until` or
    /// an end-bounded sampler) and is strictly observational — outcomes
    /// and base exports are unchanged with it on or off.
    pub fn slo(mut self, engine: SloEngine) -> Self {
        self.slo = engine;
        self
    }

    /// Attribute the reproduction's own heap into `profiler`, exactly as
    /// `EslurmSystemBuilder::mem_profile` does for the distributed stack
    /// (host-memory domain, DESIGN §15; inert without the `mem-profile`
    /// feature). Centralized-RM FSMs all run under the `rm` tag.
    pub fn mem_profile(mut self, profiler: MemProfiler) -> Self {
        self.mem = profiler;
        self
    }

    /// Materialize the cluster.
    pub fn build(self) -> ClusterHarness {
        let n = self.n;
        assert!(n >= 2, "need a master and at least one slave");
        let slaves: Vec<u32> = (1..n as u32).collect();
        let heartbeat = match self.profile.heartbeat {
            HeartbeatMode::MasterPolls { .. } => SlaveHeartbeat::None,
            HeartbeatMode::SlavePush {
                interval,
                synchronized,
            } => SlaveHeartbeat::Push {
                interval,
                synchronized,
            },
        };
        let slave_cfg = SlaveConfig {
            master: NodeId::MASTER,
            heartbeat,
            conn_lifetime: self.profile.conn_lifetime,
            obs: self.obs.clone(),
            ..SlaveConfig::default()
        };
        let mut actors = Vec::with_capacity(n);
        actors.push(RmNode::Master(
            CentralizedMaster::new(self.profile, slaves).with_obs(self.obs.clone()),
        ));
        for _ in 1..n {
            actors.push(RmNode::Slave(SlaveDaemon::new(slave_cfg.clone())));
        }
        let mut config = SimConfig::new(n, self.seed);
        config.obs = self.obs;
        config.engine = self.engine;
        config.slo = self.slo;
        config.mem = self.mem;
        if self.sampler.enabled() {
            self.sampler.name_node(NodeId::MASTER.0, "master");
            config.sampler = self.sampler;
        }
        if let Some(f) = self.faults {
            config.faults = f;
        }
        if let Some(until) = self.sample_until {
            config.sampling = Some(Sampling {
                interval: SimSpan::from_secs(1),
                tracked: vec![NodeId::MASTER],
                until,
            });
        }
        ClusterHarness {
            sim: SimCluster::new(actors, config),
            policies: self.policies,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_stream_runs_to_completion() {
        let mut h = RmClusterBuilder::new(RmProfile::slurm(), 65)
            .seed(5)
            .build();
        let n = h.submit_stream(
            64,
            SimSpan::from_secs(600),
            120.0,
            32,
            SimSpan::from_secs(60),
            9,
        );
        assert!(n > 5, "stream produced only {n} jobs");
        h.sim.run_until(SimTime::from_secs(3600));
        assert_eq!(h.master_actor().records.len() as u64, n);
    }

    #[test]
    fn sampling_records_master_series() {
        let mut h = RmClusterBuilder::new(RmProfile::lsf(), 33)
            .seed(5)
            .sample_until(SimTime::from_secs(60))
            .build();
        h.sim.run_until(SimTime::from_secs(120));
        let series = h.sim.series(NodeId::MASTER).expect("master tracked");
        assert_eq!(series.samples.len(), 60);
        // Memory allocated at start shows up in every sample.
        assert!(series.samples[0].virt_mem > 1 << 30);
    }

    #[test]
    fn builder_policies_reach_the_backfill_config() {
        let h = RmClusterBuilder::new(RmProfile::slurm(), 17)
            .priority(MultifactorPriority::slurm_default())
            .fairshare(FairShareLedger::new(SimSpan::from_hours(24), 4))
            .build();
        let cfg = h.backfill_config();
        assert_eq!(cfg.nodes, 16);
        assert!(!cfg.policies.priority.is_uniform());
        assert!(cfg.policies.fairshare.enabled());
        assert!(!cfg.policies.is_trivial());
    }
}
