//! # eslurm-rm
//!
//! Centralized resource-manager baselines running on the cluster emulator:
//!
//! * [`proto`] — the control-plane wire protocol (shared with the ESlurm
//!   overlay in the `eslurm` crate), with a real byte codec and zero-copy
//!   node-list slices;
//! * [`profile`] — behavioural profiles of SGE, Torque, OpenPBS, LSF, and
//!   Slurm (heartbeat style, connection policy, fan-out, per-node/job
//!   memory);
//! * [`slave`] — the per-node daemon: heartbeats, poll replies, and
//!   grouping-tree relay with aggregated, timeout-guarded acks;
//! * [`master`] — the centralized master daemon (the bottleneck the paper
//!   measures in Fig. 7);
//! * [`driver`] — harness glue to build clusters and inject job streams.

pub mod driver;
pub mod master;
pub mod profile;
pub mod proto;
pub mod slave;

pub use driver::{ClusterHarness, RmClusterBuilder, RmNode};
pub use master::{CentralizedMaster, JobRecord};
pub use profile::{Fanout, HeartbeatMode, RmProfile};
pub use proto::{decode, encode, CtlKind, NodeSlice, RmMsg};
pub use slave::{SlaveConfig, SlaveDaemon, SlaveHeartbeat};
