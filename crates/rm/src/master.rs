//! The centralized master daemon (`slurmctld` / `pbs_server` / `sge_qmaster`
//! analogue), parameterized by an [`RmProfile`].
//!
//! It carries the full per-node and per-job state of the cluster, performs
//! liveness tracking in the profile's style, and launches/terminates jobs
//! through the profile's fan-out — everything that makes a centralized RM's
//! master node the hot spot the paper's Fig. 7 measures.

use crate::profile::{Fanout, HeartbeatMode, RmProfile};
use crate::proto::{CtlKind, NodeSlice, RmMsg};
use emu::{Actor, Context, NodeId};
use obs::{Counter, EventKind, FlowKind, Hist, LabeledGauge, MetricId, Recorder, TraceContext};
use simclock::{SimSpan, SimTime};
use std::collections::BTreeMap;
use topology::split_balanced;

/// Completed-job record kept by the master (drives Fig. 7(f)).
#[derive(Clone, Copy, Debug)]
pub struct JobRecord {
    /// Job id.
    pub job: u64,
    /// Submission time.
    pub submitted: SimTime,
    /// All launch acks collected (processes running everywhere).
    pub launch_done: SimTime,
    /// All terminate acks collected (resources reclaimed).
    pub finished: SimTime,
    /// Nodes the job used.
    pub nodes: u32,
}

impl JobRecord {
    /// The paper's job occupation time: submission → full resource release.
    pub fn occupation(&self) -> SimSpan {
        self.finished - self.submitted
    }
}

#[derive(Debug, PartialEq, Eq)]
enum Phase {
    Launching,
    Running,
    Terminating,
}

struct JobState {
    nodes: NodeSlice,
    runtime: SimSpan,
    submitted: SimTime,
    launch_done: Option<SimTime>,
    phase: Phase,
    acked: u32,
    expected_acks: u32,
    /// Next node index to contact (sequential fan-out only).
    seq_next: usize,
    /// Causal-trace root for this job's dispatch flow (the centralized
    /// baselines trace the same flow kinds as the ESlurm tree, so
    /// `eslurm critical-path` comparisons line up).
    trace: Option<TraceContext>,
}

const TOKEN_POLL: u64 = 0;
// Per-job timers: token = job * 4 + k.
const JOB_RUN_DONE: u64 = 1;
const JOB_SEQ_STEP: u64 = 2;
const QUERY_REPLY: u64 = 3;

/// The centralized master actor.
pub struct CentralizedMaster {
    profile: RmProfile,
    slaves: Vec<u32>,
    jobs: BTreeMap<u64, JobState>,
    /// Completed jobs, in completion order.
    pub records: Vec<JobRecord>,
    /// The daemon's work backlog: messages are served in arrival order,
    /// so a user request lands behind whatever storm is in progress.
    busy_until: SimTime,
    pending_queries: BTreeMap<u64, NodeId>,
    /// `(request id, response latency)` for served user requests.
    pub query_log: Vec<(u64, SimSpan)>,
    query_arrival: BTreeMap<u64, SimTime>,
    obs: Recorder,
    /// Bookkeeping bytes (`rm_bookkeeping_bytes{component=rm.master}`):
    /// the virtual memory the daemon's job/node records account for,
    /// mirrored into the labeled registry so footprint exports can break
    /// it out from transport buffers. No-op when `obs` is disabled.
    book_mem: LabeledGauge,
}

impl CentralizedMaster {
    /// A master managing `slaves` (their node ids) under `profile`.
    pub fn new(profile: RmProfile, slaves: Vec<u32>) -> Self {
        CentralizedMaster {
            profile,
            slaves,
            jobs: BTreeMap::new(),
            records: Vec::new(),
            busy_until: SimTime::ZERO,
            pending_queries: BTreeMap::new(),
            query_log: Vec::new(),
            query_arrival: BTreeMap::new(),
            obs: Recorder::disabled(),
            book_mem: LabeledGauge::default(),
        }
    }

    /// Record job and query telemetry into `recorder`.
    pub fn with_obs(mut self, recorder: Recorder) -> Self {
        if recorder.enabled() {
            self.book_mem = recorder.labeled_gauge(
                MetricId::new("rm_bookkeeping_bytes").with("component", "rm.master"),
            );
        }
        self.obs = recorder;
        self
    }

    /// The profile in force.
    pub fn profile(&self) -> &RmProfile {
        &self.profile
    }

    /// Charge `cost` of daemon work: CPU accounting plus the serial work
    /// backlog that delays user-request replies. Free-standing over the
    /// backlog field so callers holding other field borrows can use it.
    fn track_work(busy_until: &mut SimTime, ctx: &mut dyn Context<RmMsg>, cost: SimSpan) {
        ctx.charge_cpu(cost);
        *busy_until = (*busy_until).max(ctx.now()) + cost;
    }

    fn begin_ctl(&mut self, ctx: &mut dyn Context<RmMsg>, job: u64, kind: CtlKind) {
        let state = self.jobs.get_mut(&job).expect("ctl for unknown job");
        state.acked = 0;
        state.seq_next = 0;
        ctx.trace_adopt(state.trace);
        match self.profile.fanout {
            Fanout::Direct => {
                state.expected_acks = state.nodes.len() as u32;
                for i in 0..state.nodes.len() {
                    let head = state.nodes.nodes()[i];
                    Self::track_work(&mut self.busy_until, ctx, self.profile.msg_cpu);
                    if !self.profile.persistent_connections {
                        ctx.open_socket_for(NodeId(head), self.profile.conn_lifetime);
                    }
                    ctx.send(
                        NodeId(head),
                        RmMsg::JobCtl {
                            job,
                            kind,
                            list: state.nodes.slice(i, i),
                            width: 2,
                        },
                    );
                }
            }
            Fanout::Tree { width } => {
                let w = (width as usize).max(2);
                let n = state.nodes.len();
                let k = if n < w { n } else { w };
                let chunks = split_balanced(n, k);
                state.expected_acks = chunks.len() as u32;
                for (lo, len) in chunks {
                    let head = state.nodes.nodes()[lo];
                    Self::track_work(&mut self.busy_until, ctx, self.profile.msg_cpu);
                    if !self.profile.persistent_connections {
                        ctx.open_socket_for(NodeId(head), self.profile.conn_lifetime);
                    }
                    ctx.send(
                        NodeId(head),
                        RmMsg::JobCtl {
                            job,
                            kind,
                            list: state.nodes.slice(lo + 1, lo + len),
                            width,
                        },
                    );
                }
            }
            Fanout::Sequential => {
                state.expected_acks = state.nodes.len() as u32;
                // Contact the first node now; the rest are paced by timer.
                self.seq_step(ctx, job, kind);
            }
        }
    }

    fn seq_step(&mut self, ctx: &mut dyn Context<RmMsg>, job: u64, kind: CtlKind) {
        let Some(state) = self.jobs.get_mut(&job) else {
            return;
        };
        if state.seq_next >= state.nodes.len() {
            return;
        }
        ctx.trace_adopt(state.trace);
        let head = state.nodes.nodes()[state.seq_next];
        state.seq_next += 1;
        Self::track_work(&mut self.busy_until, ctx, self.profile.msg_cpu);
        if !self.profile.persistent_connections {
            ctx.open_socket_for(NodeId(head), self.profile.conn_lifetime);
        }
        let i = state.seq_next - 1;
        ctx.send(
            NodeId(head),
            RmMsg::JobCtl {
                job,
                kind,
                list: state.nodes.slice(i, i),
                width: 2,
            },
        );
        if state.seq_next < state.nodes.len() {
            let term_bit = (matches!(kind, CtlKind::Terminate) as u64) << 63;
            ctx.set_timer(self.profile.seq_gap, (job * 4 + JOB_SEQ_STEP) | term_bit);
        }
    }

    fn ctl_complete(&mut self, ctx: &mut dyn Context<RmMsg>, job: u64) {
        let state = self.jobs.get_mut(&job).expect("complete for unknown job");
        match state.phase {
            Phase::Launching => {
                state.phase = Phase::Running;
                state.launch_done = Some(ctx.now());
                let runtime = state.runtime;
                ctx.set_timer(runtime, job * 4 + JOB_RUN_DONE);
            }
            Phase::Terminating => {
                let state = self.jobs.remove(&job).expect("job vanished");
                Self::track_work(&mut self.busy_until, ctx, self.profile.sched_cpu);
                self.obs.inc(Counter::JobsCompleted);
                self.obs.span_from(
                    state.submitted,
                    ctx.now(),
                    ctx.me().0,
                    EventKind::JobComplete,
                    job,
                    0,
                );
                // Release per-job memory, keep the leaked history bytes.
                let keep = self.profile.job_record_leak as i64;
                ctx.alloc_virt(-(self.profile.per_job_virt as i64) + keep);
                ctx.alloc_real(-(self.profile.per_job_real as i64) + keep / 4);
                self.book_mem
                    .add(-(self.profile.per_job_virt as i64) + keep);
                self.records.push(JobRecord {
                    job,
                    submitted: state.submitted,
                    launch_done: state.launch_done.unwrap_or(ctx.now()),
                    finished: ctx.now(),
                    nodes: state.nodes.len() as u32,
                });
            }
            Phase::Running => {}
        }
    }
}

impl Actor<RmMsg> for CentralizedMaster {
    fn on_start(&mut self, ctx: &mut dyn Context<RmMsg>) {
        ctx.alloc_virt(
            (self.profile.base_virt + self.slaves.len() as u64 * self.profile.per_node_virt) as i64,
        );
        self.book_mem.add(
            (self.profile.base_virt + self.slaves.len() as u64 * self.profile.per_node_virt) as i64,
        );
        ctx.alloc_real(
            (self.profile.base_real + self.slaves.len() as u64 * self.profile.per_node_real) as i64,
        );
        if self.profile.persistent_connections {
            for &s in &self.slaves {
                ctx.open_socket(NodeId(s));
            }
        }
        if let HeartbeatMode::MasterPolls { interval } = self.profile.heartbeat {
            ctx.set_timer(interval, TOKEN_POLL);
        }
    }

    fn on_message(&mut self, ctx: &mut dyn Context<RmMsg>, _from: NodeId, msg: RmMsg) {
        match msg {
            RmMsg::SubmitJob {
                job,
                nodes,
                runtime_us,
            } => {
                Self::track_work(&mut self.busy_until, ctx, self.profile.sched_cpu);
                ctx.alloc_virt(self.profile.per_job_virt as i64);
                ctx.alloc_real(self.profile.per_job_real as i64);
                self.book_mem.add(self.profile.per_job_virt as i64);
                self.obs.inc(Counter::JobsSubmitted);
                self.obs.event_at(
                    ctx.now(),
                    ctx.me().0,
                    EventKind::JobSubmit,
                    job,
                    nodes.len() as u64,
                );
                let trace = ctx.trace_begin(FlowKind::Dispatch);
                self.jobs.insert(
                    job,
                    JobState {
                        nodes,
                        runtime: SimSpan::from_micros(runtime_us),
                        submitted: ctx.now(),
                        launch_done: None,
                        phase: Phase::Launching,
                        acked: 0,
                        expected_acks: 0,
                        seq_next: 0,
                        trace,
                    },
                );
                self.begin_ctl(ctx, job, CtlKind::Launch);
            }
            RmMsg::CtlAck {
                job,
                kind,
                count: _,
            } => {
                Self::track_work(&mut self.busy_until, ctx, self.profile.msg_cpu);
                let Some(state) = self.jobs.get_mut(&job) else {
                    return;
                };
                let expected_kind = match state.phase {
                    Phase::Launching => CtlKind::Launch,
                    Phase::Terminating => CtlKind::Terminate,
                    Phase::Running => return,
                };
                if kind != expected_kind {
                    return;
                }
                state.acked += 1;
                if state.acked >= state.expected_acks {
                    self.ctl_complete(ctx, job);
                }
            }
            RmMsg::Heartbeat { .. } => {
                Self::track_work(&mut self.busy_until, ctx, self.profile.msg_cpu);
                if let RmMsg::Heartbeat { node } = msg {
                    ctx.send(NodeId(node), RmMsg::HeartbeatAck);
                }
            }
            RmMsg::PollReply { .. } => {
                Self::track_work(&mut self.busy_until, ctx, self.profile.msg_cpu);
            }
            RmMsg::Register { .. } => {
                Self::track_work(&mut self.busy_until, ctx, self.profile.msg_cpu);
            }
            RmMsg::CancelJob { job } => {
                Self::track_work(&mut self.busy_until, ctx, self.profile.sched_cpu);
                // Cancelling a running job is an early termination: reuse
                // the terminate broadcast so resources are reclaimed
                // everywhere. Launching jobs finish their launch first
                // (the run timer then never fires for cancelled state).
                if let Some(state) = self.jobs.get(&job) {
                    match state.phase {
                        Phase::Running => {
                            let state = self.jobs.get_mut(&job).expect("just looked up");
                            state.phase = Phase::Terminating;
                            self.begin_ctl(ctx, job, CtlKind::Terminate);
                        }
                        Phase::Launching | Phase::Terminating => {
                            // Already on its way in or out; the pending
                            // lifecycle events complete the cleanup.
                        }
                    }
                }
            }
            RmMsg::StatusQuery { id } => {
                // Answering needs a consistent snapshot of the global
                // job/node state — a scheduler-weight operation that waits
                // behind the backlog.
                self.query_arrival.insert(id, ctx.now());
                Self::track_work(&mut self.busy_until, ctx, self.profile.sched_cpu);
                self.pending_queries.insert(id, _from);
                let delay = self.busy_until - ctx.now();
                ctx.set_timer(delay, id * 4 + QUERY_REPLY);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn Context<RmMsg>, token: u64) {
        if token == TOKEN_POLL {
            if let HeartbeatMode::MasterPolls { interval } = self.profile.heartbeat {
                for i in 0..self.slaves.len() {
                    let s = self.slaves[i];
                    Self::track_work(&mut self.busy_until, ctx, self.profile.msg_cpu);
                    if !self.profile.persistent_connections {
                        ctx.open_socket_for(NodeId(s), self.profile.conn_lifetime);
                    }
                    ctx.send(NodeId(s), RmMsg::Poll);
                }
                ctx.set_timer(interval, TOKEN_POLL);
            }
            return;
        }
        let seq_term = token & (1 << 63) != 0;
        let base = token & !(1 << 63);
        let job = base / 4;
        match base % 4 {
            JOB_RUN_DONE => {
                if let Some(state) = self.jobs.get_mut(&job) {
                    if state.phase != Phase::Running {
                        return; // cancelled while running: cleanup underway
                    }
                    state.phase = Phase::Terminating;
                    Self::track_work(&mut self.busy_until, ctx, self.profile.sched_cpu);
                    self.begin_ctl(ctx, job, CtlKind::Terminate);
                }
            }
            JOB_SEQ_STEP => {
                let kind = if seq_term {
                    CtlKind::Terminate
                } else {
                    CtlKind::Launch
                };
                self.seq_step(ctx, job, kind);
            }
            QUERY_REPLY => {
                let id = job; // token layout shares the id slot
                if let Some(asker) = self.pending_queries.remove(&id) {
                    if let Some(arrived) = self.query_arrival.remove(&id) {
                        let latency = ctx.now() - arrived;
                        self.obs.inc(Counter::QueriesServed);
                        self.obs.observe(Hist::QueryLatencyUs, latency.as_micros());
                        self.obs.event_at(
                            ctx.now(),
                            ctx.me().0,
                            EventKind::QueryServed,
                            asker.0 as u64,
                            0,
                        );
                        self.query_log.push((id, latency));
                    }
                    ctx.send(asker, RmMsg::StatusReply { id });
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::RmClusterBuilder;

    fn run_one_job(profile: RmProfile, n: usize, job_nodes: u32) -> (SimSpan, SimSpan) {
        let mut h = RmClusterBuilder::new(profile, n).seed(11).build();
        h.submit(
            SimTime::from_secs(1),
            1,
            (1..=job_nodes).collect(),
            SimSpan::from_secs(10),
        );
        h.sim.run_until(SimTime::from_secs(300));
        let master = h.master_actor();
        assert_eq!(
            master.records.len(),
            1,
            "{} job did not finish",
            master.profile().name
        );
        let r = master.records[0];
        (r.occupation(), r.launch_done - r.submitted)
    }

    #[test]
    fn tree_rm_occupation_close_to_runtime() {
        let (occ, launch) = run_one_job(RmProfile::slurm(), 257, 256);
        assert!(launch < SimSpan::from_secs(1), "launch took {launch}");
        assert!(occ >= SimSpan::from_secs(10));
        assert!(occ < SimSpan::from_secs(12), "occupation {occ}");
    }

    #[test]
    fn sequential_rm_occupation_blows_up_with_size() {
        let (small, _) = run_one_job(RmProfile::torque(), 257, 32);
        let (big, _) = run_one_job(RmProfile::torque(), 257, 256);
        // 8 ms per node, twice (launch + terminate): 256 nodes ≈ +4 s.
        assert!(
            big > small + SimSpan::from_secs(2),
            "small {small} big {big}"
        );
    }

    #[test]
    fn job_memory_is_released_with_leak() {
        let profile = RmProfile::slurm();
        let per_job = profile.per_job_virt;
        let leak = profile.job_record_leak;
        let mut h = RmClusterBuilder::new(profile, 65).seed(3).build();
        h.sim.run_until(SimTime::from_millis(10));
        let before = h.sim.meter(NodeId::MASTER).virt_mem();
        h.submit(
            SimTime::from_millis(20),
            1,
            (1..=64).collect(),
            SimSpan::from_secs(5),
        );
        h.sim.run_until(SimTime::from_secs(2));
        let during = h.sim.meter(NodeId::MASTER).virt_mem();
        assert_eq!(during, before + per_job);
        h.sim.run_until(SimTime::from_secs(100));
        let after = h.sim.meter(NodeId::MASTER).virt_mem();
        assert_eq!(after, before + leak, "leak not retained correctly");
    }

    #[test]
    fn cancellation_reclaims_resources_early() {
        let mut h = RmClusterBuilder::new(RmProfile::slurm(), 65)
            .seed(3)
            .build();
        h.submit(
            SimTime::from_secs(1),
            1,
            (1..=64).collect(),
            SimSpan::from_secs(600),
        );
        h.sim.inject(
            SimTime::from_secs(60),
            NodeId(1),
            NodeId::MASTER,
            RmMsg::CancelJob { job: 1 },
        );
        h.sim.run_until(SimTime::from_secs(300));
        let rec = h
            .master_actor()
            .records
            .first()
            .copied()
            .expect("job cleaned up");
        let occ = rec.occupation().as_secs_f64();
        assert!((59.0..80.0).contains(&occ), "occupation {occ}s");
    }

    #[test]
    fn polling_masters_accumulate_cpu() {
        let mut h = RmClusterBuilder::new(RmProfile::sge(), 101).seed(5).build();
        h.sim.run_until(SimTime::from_secs(120));
        let cpu_sge = h.sim.meter(NodeId::MASTER).cpu_time();
        let mut h2 = RmClusterBuilder::new(RmProfile::slurm(), 101)
            .seed(5)
            .build();
        h2.sim.run_until(SimTime::from_secs(120));
        let cpu_slurm = h2.sim.meter(NodeId::MASTER).cpu_time();
        assert!(
            cpu_sge > cpu_slurm * 3,
            "SGE {cpu_sge} should dwarf Slurm {cpu_slurm}"
        );
    }

    #[test]
    fn persistent_profiles_hold_sockets() {
        let mut h = RmClusterBuilder::new(RmProfile::openpbs(), 101)
            .seed(7)
            .build();
        h.sim.run_until(SimTime::from_secs(5));
        assert_eq!(h.sim.meter(NodeId::MASTER).sockets(), 100);
        let mut h2 = RmClusterBuilder::new(RmProfile::slurm(), 101)
            .seed(7)
            .build();
        h2.sim.run_until(SimTime::from_secs(5));
        assert!(h2.sim.meter(NodeId::MASTER).sockets() < 10);
    }
}
