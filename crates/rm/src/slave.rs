//! The per-node service daemon (`slurmd` analogue), shared by every RM in
//! the reproduction: it answers liveness traffic, spawns/kills job
//! processes, and relays job-control broadcasts down the grouping tree
//! with aggregated acknowledgements and a partial-ack timeout for failed
//! children.

use crate::proto::{CtlKind, NodeSlice, RmMsg};
use emu::{Actor, Context, NodeId};
use obs::{Counter, Recorder, TraceContext};
use rand::RngExt;
use simclock::{SimSpan, SimTime};
use std::collections::BTreeMap;
use topology::{relay_depth, split_balanced};

/// Heartbeat behaviour of a slave.
#[derive(Clone, Copy, Debug)]
pub enum SlaveHeartbeat {
    /// No periodic reporting (the master polls instead).
    None,
    /// Push a heartbeat to the master every `interval`. `synchronized`
    /// slaves fire at wall-clock multiples of the interval.
    Push {
        /// Report period.
        interval: SimSpan,
        /// Epoch-aligned vs. random phase.
        synchronized: bool,
    },
}

/// Relay bookkeeping for one in-flight broadcast through this node.
struct Relay {
    origin: NodeId,
    job: u64,
    kind: CtlKind,
    expected: u32,
    received: u32,
    /// Nodes covered so far (self + acknowledged subtrees).
    count: u32,
    done: bool,
    /// When the relay fanned out (start of the ack-timeout window).
    started: SimTime,
    /// Causal context the incoming `JobCtl` carried, so a timeout-driven
    /// partial ack still links into the broadcast's trace.
    trace: Option<TraceContext>,
}

/// Configuration of a slave daemon.
#[derive(Clone, Debug)]
pub struct SlaveConfig {
    /// Where heartbeats and poll replies go.
    pub master: NodeId,
    /// Heartbeat behaviour.
    pub heartbeat: SlaveHeartbeat,
    /// CPU cost of spawning job processes on this node.
    pub launch_cpu: SimSpan,
    /// CPU cost of killing processes / reclaiming resources.
    pub term_cpu: SimSpan,
    /// Per-relay-level wait for children's acks before reporting a
    /// partial count upward. A node holding a depth-`d` sub-list waits
    /// `d × ack_timeout`, so descendants always resolve before ancestors.
    pub ack_timeout: SimSpan,
    /// Lifetime of the ephemeral heartbeat connection.
    pub conn_lifetime: SimSpan,
    /// Telemetry sink (disabled by default).
    pub obs: Recorder,
}

impl Default for SlaveConfig {
    fn default() -> Self {
        SlaveConfig {
            master: NodeId::MASTER,
            heartbeat: SlaveHeartbeat::Push {
                interval: SimSpan::from_secs(30),
                synchronized: true,
            },
            launch_cpu: SimSpan::from_millis(2),
            term_cpu: SimSpan::from_millis(1),
            ack_timeout: SimSpan::from_secs(6),
            conn_lifetime: SimSpan::from_millis(500),
            obs: Recorder::disabled(),
        }
    }
}

const TOKEN_HEARTBEAT: u64 = 0;
const TOKEN_RELAY_BASE: u64 = 1;

/// The slave daemon actor.
pub struct SlaveDaemon {
    cfg: SlaveConfig,
    relays: BTreeMap<u64, Relay>,
    next_token: u64,
    /// Launch/terminate messages this node has executed (for assertions).
    pub ctl_handled: u64,
}

impl SlaveDaemon {
    /// A daemon with the given configuration.
    pub fn new(cfg: SlaveConfig) -> Self {
        SlaveDaemon {
            cfg,
            relays: BTreeMap::new(),
            next_token: TOKEN_RELAY_BASE,
            ctl_handled: 0,
        }
    }

    fn handle_ctl(
        &mut self,
        ctx: &mut dyn Context<RmMsg>,
        from: NodeId,
        job: u64,
        kind: CtlKind,
        list: NodeSlice,
        width: u16,
    ) {
        // Execute locally (spawn or kill the job step).
        self.ctl_handled += 1;
        self.cfg.obs.inc(Counter::CtlExecuted);
        ctx.charge_cpu(match kind {
            CtlKind::Launch => self.cfg.launch_cpu,
            CtlKind::Terminate => self.cfg.term_cpu,
            CtlKind::Ping => SimSpan::from_micros(30),
        });
        if list.is_empty() {
            ctx.send(
                from,
                RmMsg::CtlAck {
                    job,
                    kind,
                    count: 1,
                },
            );
            return;
        }
        // Relay: chunk the remaining list, hand each chunk to its head.
        let w = (width as usize).max(2);
        let k = if list.len() < w { list.len() } else { w };
        let chunks = split_balanced(list.len(), k);
        let expected = chunks.len() as u32;
        for (lo, len) in chunks {
            let head = list.nodes()[lo];
            let rest = list.slice(lo + 1, lo + len);
            ctx.send(
                NodeId(head),
                RmMsg::JobCtl {
                    job,
                    kind,
                    list: rest,
                    width,
                },
            );
        }
        let token = self.next_token;
        self.next_token += 1;
        self.relays.insert(
            token,
            Relay {
                origin: from,
                job,
                kind,
                expected,
                received: 0,
                count: 1,
                done: false,
                started: ctx.now(),
                trace: ctx.trace_current(),
            },
        );
        let depth = relay_depth(list.len(), w) as u64;
        ctx.set_timer(self.cfg.ack_timeout * depth.max(1), token);
    }

    fn finish_relay(ctx: &mut dyn Context<RmMsg>, relay: &mut Relay) {
        if relay.done {
            return;
        }
        relay.done = true;
        ctx.send(
            relay.origin,
            RmMsg::CtlAck {
                job: relay.job,
                kind: relay.kind,
                count: relay.count,
            },
        );
    }

    fn arm_heartbeat(&self, ctx: &mut dyn Context<RmMsg>) {
        if let SlaveHeartbeat::Push {
            interval,
            synchronized,
        } = self.cfg.heartbeat
        {
            let delay = if synchronized {
                // Fire at the next wall-clock multiple of the interval,
                // plus sub-millisecond skew so ties stay deterministic but
                // the burst is still a burst.
                let period = interval.as_micros();
                let next = (ctx.now().as_micros() / period + 1) * period;
                let skew = ctx.rng().random_range(0..1000);
                SimSpan(next - ctx.now().as_micros() + skew)
            } else {
                interval.mul_f64(0.5 + ctx.rng().random::<f64>())
            };
            ctx.set_timer(delay, TOKEN_HEARTBEAT);
        }
    }
}

impl Actor<RmMsg> for SlaveDaemon {
    fn on_start(&mut self, ctx: &mut dyn Context<RmMsg>) {
        self.arm_heartbeat(ctx);
    }

    fn on_message(&mut self, ctx: &mut dyn Context<RmMsg>, from: NodeId, msg: RmMsg) {
        match msg {
            RmMsg::Poll => {
                ctx.charge_cpu(SimSpan::from_micros(30));
                ctx.send(from, RmMsg::PollReply { load: 0 });
            }
            RmMsg::HeartbeatAck => {}
            RmMsg::JobCtl {
                job,
                kind,
                list,
                width,
            } => {
                self.handle_ctl(ctx, from, job, kind, list, width);
            }
            RmMsg::CtlAck { job, kind, count } => {
                // Attribute to the matching live relay (job+kind identify
                // it; a stale ack after timeout is dropped).
                let found = self
                    .relays
                    .iter_mut()
                    .find(|(_, r)| r.job == job && r.kind == kind && !r.done);
                if let Some((&token, relay)) = found {
                    relay.received += 1;
                    relay.count += count;
                    if relay.received >= relay.expected {
                        Self::finish_relay(ctx, relay);
                        self.relays.remove(&token);
                    }
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn Context<RmMsg>, token: u64) {
        if token == TOKEN_HEARTBEAT {
            ctx.charge_cpu(SimSpan::from_micros(20));
            let me = ctx.me().0;
            let master = self.cfg.master;
            ctx.open_socket_for(master, self.cfg.conn_lifetime);
            ctx.send(master, RmMsg::Heartbeat { node: me });
            self.arm_heartbeat(ctx);
        } else if let Some(mut relay) = self.relays.remove(&token) {
            // Children that didn't answer in time are reported as missing
            // (partial count) — the parent layer handles re-routing. The
            // wait on the silent subtree is timeout backoff in the trace.
            if let Some(tc) = relay.trace {
                ctx.trace_backoff(&tc, relay.started);
                ctx.trace_adopt(Some(tc));
            }
            Self::finish_relay(ctx, &mut relay);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emu::{SimCluster, SimConfig};

    /// A harness master that records acks.
    struct Sink {
        acks: Vec<(u64, CtlKind, u32)>,
    }
    impl Actor<RmMsg> for Sink {
        fn on_message(&mut self, _: &mut dyn Context<RmMsg>, _: NodeId, msg: RmMsg) {
            if let RmMsg::CtlAck { job, kind, count } = msg {
                self.acks.push((job, kind, count));
            }
        }
    }

    enum Node {
        Sink(Sink),
        Slave(SlaveDaemon),
    }
    impl Actor<RmMsg> for Node {
        fn on_start(&mut self, ctx: &mut dyn Context<RmMsg>) {
            if let Node::Slave(s) = self {
                s.on_start(ctx);
            }
        }
        fn on_message(&mut self, ctx: &mut dyn Context<RmMsg>, from: NodeId, msg: RmMsg) {
            match self {
                Node::Sink(s) => s.on_message(ctx, from, msg),
                Node::Slave(s) => s.on_message(ctx, from, msg),
            }
        }
        fn on_timer(&mut self, ctx: &mut dyn Context<RmMsg>, token: u64) {
            match self {
                Node::Sink(_) => {}
                Node::Slave(s) => s.on_timer(ctx, token),
            }
        }
    }

    fn quiet_slave() -> SlaveDaemon {
        SlaveDaemon::new(SlaveConfig {
            heartbeat: SlaveHeartbeat::None,
            ..Default::default()
        })
    }

    fn cluster(n: usize) -> SimCluster<RmMsg, Node> {
        let mut actors = vec![Node::Sink(Sink { acks: Vec::new() })];
        for _ in 1..n {
            actors.push(Node::Slave(quiet_slave()));
        }
        SimCluster::new(actors, SimConfig::new(n, 42))
    }

    #[test]
    fn tree_relay_reaches_all_and_aggregates() {
        let n = 200;
        let mut c = cluster(n + 1);
        let list: Vec<u32> = (1..=n as u32).collect();
        let head = list[0];
        let rest = NodeSlice::new(list).slice(1, n);
        c.inject(
            simclock::SimTime::from_millis(1),
            NodeId::MASTER,
            NodeId(head),
            RmMsg::JobCtl {
                job: 7,
                kind: CtlKind::Launch,
                list: rest,
                width: 4,
            },
        );
        c.run_to_quiescence();
        let Node::Sink(sink) = c.actor(NodeId::MASTER) else {
            panic!()
        };
        assert_eq!(sink.acks, vec![(7, CtlKind::Launch, n as u32)]);
        // Every slave executed the launch exactly once.
        for i in 1..=n as u32 {
            let Node::Slave(s) = c.actor(NodeId(i)) else {
                panic!()
            };
            assert_eq!(s.ctl_handled, 1, "node {i}");
        }
    }

    #[test]
    fn empty_list_acks_immediately() {
        let mut c = cluster(2);
        c.inject(
            simclock::SimTime::from_millis(1),
            NodeId::MASTER,
            NodeId(1),
            RmMsg::JobCtl {
                job: 1,
                kind: CtlKind::Terminate,
                list: NodeSlice::empty(),
                width: 4,
            },
        );
        c.run_to_quiescence();
        let Node::Sink(sink) = c.actor(NodeId::MASTER) else {
            panic!()
        };
        assert_eq!(sink.acks, vec![(1, CtlKind::Terminate, 1)]);
    }

    #[test]
    fn failed_subtree_yields_partial_ack_after_timeout() {
        let n = 20;
        let mut actors = vec![Node::Sink(Sink { acks: Vec::new() })];
        for _ in 1..=n {
            actors.push(Node::Slave(quiet_slave()));
        }
        // Node 5 is down for the whole run.
        let faults = emu::FaultPlan::from_outages(
            n + 1,
            vec![emu::Outage {
                node: NodeId(5),
                down_at: simclock::SimTime::ZERO,
                up_at: simclock::SimTime::from_secs(1_000_000),
            }],
        );
        let cfg = SimConfig {
            faults,
            ..SimConfig::new(n + 1, 1)
        };
        let mut c = SimCluster::new(actors, cfg);
        let list: Vec<u32> = (1..=n as u32).collect();
        let head = list[0];
        let rest = NodeSlice::new(list).slice(1, n);
        c.inject(
            simclock::SimTime::from_millis(1),
            NodeId::MASTER,
            NodeId(head),
            RmMsg::JobCtl {
                job: 9,
                kind: CtlKind::Launch,
                list: rest,
                width: 4,
            },
        );
        c.run_to_quiescence();
        let Node::Sink(sink) = c.actor(NodeId::MASTER) else {
            panic!()
        };
        assert_eq!(sink.acks.len(), 1);
        let (_, _, count) = sink.acks[0];
        // Node 5 and any nodes stranded below it are missing from the
        // count; everything else is covered.
        assert!(count < n as u32, "count {count}");
        assert!(count >= n as u32 - 6, "count {count} lost too many");
    }

    #[test]
    fn synchronized_heartbeats_burst_together() {
        let n = 50;
        let mut actors: Vec<Node> = vec![Node::Sink(Sink { acks: Vec::new() })];
        for _ in 1..=n {
            actors.push(Node::Slave(SlaveDaemon::new(SlaveConfig::default())));
        }
        let mut c = SimCluster::new(actors, SimConfig::new(n + 1, 3));
        c.run_until(simclock::SimTime::from_secs(31));
        // All 50 heartbeats arrive within the same ~second around t=30.
        let (_, received) = c.meter(NodeId::MASTER).msg_counts();
        assert_eq!(received, n as u64);
    }
}
