//! Behavioural profiles of the five centralized RMs the paper compares
//! against (SGE 8.1.9, Torque 6.13, OpenPBS 20.0.1, LSF 10.0.1,
//! Slurm 20.11.7).
//!
//! Each profile captures the *architectural* properties the paper's Fig. 7
//! measurements reflect: how liveness is tracked (master polls vs. slaves
//! push), whether connections are persistent, how job launches fan out,
//! per-message daemon cost, and the memory the master pins per node and
//! per job. The absolute constants are calibrated so the 4K-node emulation
//! lands in the ballpark of Fig. 7 (e.g. Slurm ≈ 10 GB virtual memory,
//! ESlurm's master < 100 sockets); the *orderings* are what the
//! architecture dictates.

use simclock::SimSpan;

/// How the RM tracks node liveness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HeartbeatMode {
    /// The master contacts every slave each interval (SGE/Torque/PBS
    /// style) — O(n) work and connections at the master.
    MasterPolls {
        /// Poll period.
        interval: SimSpan,
    },
    /// Slaves report in each interval (Slurm/LSF style). `synchronized`
    /// slaves fire on wall-clock multiples of the interval, producing the
    /// bursty connection spikes of Fig. 7(e).
    SlavePush {
        /// Report period.
        interval: SimSpan,
        /// Epoch-aligned (bursty) vs. phase-staggered reporting.
        synchronized: bool,
    },
}

/// How a job-control message reaches its nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fanout {
    /// Master contacts every node of the job itself.
    Direct,
    /// Grouping-tree relay of the given width through the slaves.
    Tree {
        /// Tree width.
        width: u16,
    },
    /// Master contacts nodes one at a time, serially (models RMs whose
    /// launcher is single-threaded — the SGE/Torque behaviour behind
    /// Fig. 7(f)'s blow-up).
    Sequential,
}

/// A centralized RM's behavioural profile.
#[derive(Clone, Debug)]
pub struct RmProfile {
    /// Display name.
    pub name: &'static str,
    /// Liveness tracking style.
    pub heartbeat: HeartbeatMode,
    /// Whether the master keeps a connection per slave open permanently.
    pub persistent_connections: bool,
    /// Job-control fan-out.
    pub fanout: Fanout,
    /// Master daemon CPU charged per message handled.
    pub msg_cpu: SimSpan,
    /// Master daemon CPU charged per job scheduled (allocation logic).
    pub sched_cpu: SimSpan,
    /// Baseline master virtual memory (code + arenas + mapped files).
    pub base_virt: u64,
    /// Baseline master resident memory.
    pub base_real: u64,
    /// Virtual memory pinned per managed node.
    pub per_node_virt: u64,
    /// Resident memory pinned per managed node.
    pub per_node_real: u64,
    /// Memory pinned per active job (virtual, resident).
    pub per_job_virt: u64,
    /// Resident memory per active job.
    pub per_job_real: u64,
    /// Bytes of job history the master retains after a job completes —
    /// the unbounded growth observed on Slurm in §II-B.
    pub job_record_leak: u64,
    /// Lifetime of an ephemeral connection (poll/heartbeat exchange).
    pub conn_lifetime: SimSpan,
    /// Pacing of the serial launcher (only used with
    /// [`Fanout::Sequential`]).
    pub seq_gap: SimSpan,
}

const MIB: u64 = 1 << 20;
const GIB: u64 = 1 << 30;

impl RmProfile {
    /// Slurm 20.11.7: slaves push synchronized heartbeats, tree fan-out,
    /// lean CPU, but a large in-memory state (bitmaps, job records) and
    /// growing history.
    pub fn slurm() -> Self {
        RmProfile {
            name: "Slurm",
            heartbeat: HeartbeatMode::SlavePush {
                interval: SimSpan::from_secs(30),
                synchronized: true,
            },
            persistent_connections: false,
            fanout: Fanout::Tree { width: 50 },
            msg_cpu: SimSpan::from_micros(60),
            sched_cpu: SimSpan::from_millis(3),
            base_virt: 6 * GIB,
            base_real: 120 * MIB,
            per_node_virt: MIB,
            per_node_real: 56 * 1024,
            per_job_virt: 2 * MIB,
            per_job_real: 96 * 1024,
            job_record_leak: 24 * 1024,
            conn_lifetime: SimSpan::from_millis(500),
            seq_gap: SimSpan::from_millis(8),
        }
    }

    /// IBM LSF 10.0.1: pushed but staggered reports, direct fan-out with
    /// bursts of traffic, moderate memory.
    pub fn lsf() -> Self {
        RmProfile {
            name: "LSF",
            heartbeat: HeartbeatMode::SlavePush {
                interval: SimSpan::from_secs(15),
                synchronized: true,
            },
            persistent_connections: false,
            fanout: Fanout::Tree { width: 32 },
            msg_cpu: SimSpan::from_micros(120),
            sched_cpu: SimSpan::from_millis(5),
            base_virt: 3 * GIB,
            base_real: 200 * MIB,
            per_node_virt: 512 * 1024,
            per_node_real: 48 * 1024,
            per_job_virt: MIB,
            per_job_real: 64 * 1024,
            job_record_leak: 8 * 1024,
            conn_lifetime: SimSpan::from_millis(800),
            seq_gap: SimSpan::from_millis(8),
        }
    }

    /// SGE 8.1.9: master polls every node over persistent connections,
    /// heavy per-message cost.
    pub fn sge() -> Self {
        RmProfile {
            name: "SGE",
            heartbeat: HeartbeatMode::MasterPolls {
                interval: SimSpan::from_secs(20),
            },
            persistent_connections: true,
            fanout: Fanout::Sequential,
            msg_cpu: SimSpan::from_micros(900),
            sched_cpu: SimSpan::from_millis(8),
            base_virt: 2 * GIB,
            base_real: 300 * MIB,
            per_node_virt: 384 * 1024,
            per_node_real: 96 * 1024,
            per_job_virt: MIB,
            per_job_real: 128 * 1024,
            job_record_leak: 4 * 1024,
            conn_lifetime: SimSpan::from_secs(2),
            seq_gap: SimSpan::from_millis(10),
        }
    }

    /// Torque 6.13: polling with ephemeral connections and a serial
    /// launcher; the pbs_server is CPU-hungry at scale.
    pub fn torque() -> Self {
        RmProfile {
            name: "Torque",
            heartbeat: HeartbeatMode::MasterPolls {
                interval: SimSpan::from_secs(15),
            },
            persistent_connections: false,
            fanout: Fanout::Sequential,
            msg_cpu: SimSpan::from_micros(1100),
            sched_cpu: SimSpan::from_millis(10),
            base_virt: GIB,
            base_real: 250 * MIB,
            per_node_virt: 256 * 1024,
            per_node_real: 80 * 1024,
            per_job_virt: 768 * 1024,
            per_job_real: 96 * 1024,
            job_record_leak: 6 * 1024,
            conn_lifetime: SimSpan::from_secs(1),
            seq_gap: SimSpan::from_millis(10),
        }
    }

    /// OpenPBS 20.0.1: polling over persistent connections (many
    /// concurrent sockets); its launcher is serial like Torque's, just a
    /// little faster.
    pub fn openpbs() -> Self {
        RmProfile {
            name: "OpenPBS",
            heartbeat: HeartbeatMode::MasterPolls {
                interval: SimSpan::from_secs(20),
            },
            persistent_connections: true,
            fanout: Fanout::Sequential,
            msg_cpu: SimSpan::from_micros(700),
            sched_cpu: SimSpan::from_millis(8),
            base_virt: GIB + 512 * MIB,
            base_real: 280 * MIB,
            per_node_virt: 320 * 1024,
            per_node_real: 88 * 1024,
            per_job_virt: MIB,
            per_job_real: 112 * 1024,
            job_record_leak: 5 * 1024,
            conn_lifetime: SimSpan::from_secs(2),
            seq_gap: SimSpan::from_millis(5),
        }
    }

    /// All five baseline profiles in the paper's order.
    pub fn baselines() -> Vec<RmProfile> {
        vec![
            RmProfile::sge(),
            RmProfile::torque(),
            RmProfile::openpbs(),
            RmProfile::lsf(),
            RmProfile::slurm(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_distinct_baselines() {
        let names: Vec<&str> = RmProfile::baselines().iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["SGE", "Torque", "OpenPBS", "LSF", "Slurm"]);
    }

    #[test]
    fn slurm_has_largest_virtual_memory() {
        // Fig. 7(c): Slurm's ~10 GB virtual footprint tops the field.
        let slurm_virt = RmProfile::slurm().base_virt + 4096 * RmProfile::slurm().per_node_virt;
        for p in RmProfile::baselines() {
            let v = p.base_virt + 4096 * p.per_node_virt;
            assert!(v <= slurm_virt, "{} virt exceeds Slurm", p.name);
        }
        assert!(slurm_virt > 9 * GIB && slurm_virt < 12 * GIB);
    }

    #[test]
    fn pollers_poll_and_pushers_push() {
        assert!(matches!(
            RmProfile::sge().heartbeat,
            HeartbeatMode::MasterPolls { .. }
        ));
        assert!(matches!(
            RmProfile::openpbs().heartbeat,
            HeartbeatMode::MasterPolls { .. }
        ));
        assert!(matches!(
            RmProfile::slurm().heartbeat,
            HeartbeatMode::SlavePush { .. }
        ));
        assert!(matches!(
            RmProfile::lsf().heartbeat,
            HeartbeatMode::SlavePush { .. }
        ));
    }
}
