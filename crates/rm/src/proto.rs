//! The RM control-plane wire protocol.
//!
//! One message enum serves both the centralized baselines and the ESlurm
//! overlay (the `eslurm` crate reuses these variants for its satellite
//! traffic). Node lists travel as [`NodeSlice`] — a shared, reference-
//! counted list plus a range — so relaying a 16K-node launch down a tree
//! never copies the list, while the modelled wire size still charges for
//! the four bytes per node a real encoding would ship.
//!
//! [`encode`]/[`decode`] provide an actual byte-level codec (exercised in
//! tests and available to embedders); the emulator itself uses the
//! analytic [`Payload::size_bytes`] to avoid serializing millions of
//! messages.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use emu::Payload;
use std::sync::Arc;

/// What a job-control broadcast does.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CtlKind {
    /// Spawn job processes (the paper's "job loading message").
    Launch,
    /// Kill processes and reclaim resources ("job termination message").
    Terminate,
    /// Liveness sweep: each node confirms it is alive (ESlurm collects
    /// compute-node heartbeats through the satellite overlay this way).
    Ping,
}

/// Backing store of a [`NodeSlice`]. When the last clone of a slice
/// drops, the `Vec`'s allocation is parked in a thread-local pool and
/// handed out again by [`NodeSlice::recycled_buf`] — million-job streams
/// build one `Deliver` payload per job (plus one per FP-Tree relay task),
/// and without the pool each of those is a fresh heap allocation in the
/// DES hot path.
#[derive(Debug, PartialEq, Eq)]
struct ListBuf(Vec<u32>);

thread_local! {
    static LIST_POOL: std::cell::RefCell<Vec<Vec<u32>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Pool cap: enough for the deepest relay fan-out alive at once; beyond
/// that, freeing is cheaper than hoarding.
const LIST_POOL_MAX: usize = 64;

impl Drop for ListBuf {
    fn drop(&mut self) {
        if self.0.capacity() == 0 {
            return;
        }
        let mut buf = std::mem::take(&mut self.0);
        LIST_POOL.with(|p| {
            let mut p = p.borrow_mut();
            if p.len() < LIST_POOL_MAX {
                buf.clear();
                p.push(buf);
            }
        });
    }
}

/// A shared node list with a sub-range view.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeSlice {
    list: Arc<ListBuf>,
    lo: u32,
    hi: u32,
}

impl NodeSlice {
    /// Wrap a whole list. The allocation is recycled through the
    /// thread-local pool once the last clone drops.
    pub fn new(list: Vec<u32>) -> Self {
        let hi = list.len() as u32;
        NodeSlice {
            list: Arc::new(ListBuf(list)),
            lo: 0,
            hi,
        }
    }

    /// An empty slice.
    pub fn empty() -> Self {
        NodeSlice {
            list: Arc::new(ListBuf(Vec::new())),
            lo: 0,
            hi: 0,
        }
    }

    /// Build a slice by collecting `nodes` into a recycled buffer, so the
    /// per-payload allocation is reused instead of hitting the allocator.
    pub fn from_nodes(nodes: impl IntoIterator<Item = u32>) -> Self {
        let mut buf = Self::recycled_buf();
        buf.extend(nodes);
        Self::new(buf)
    }

    /// An empty `Vec<u32>` whose allocation (if any) came from a
    /// previously dropped slice on this thread. Fill it and hand it back
    /// via [`NodeSlice::new`] to keep the allocation cycling.
    pub fn recycled_buf() -> Vec<u32> {
        LIST_POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default()
    }

    /// View a sub-range (relative to this slice).
    pub fn slice(&self, lo: usize, hi: usize) -> Self {
        let abs_lo = self.lo as usize + lo;
        let abs_hi = self.lo as usize + hi;
        assert!(abs_lo <= abs_hi && abs_hi <= self.hi as usize);
        NodeSlice {
            list: Arc::clone(&self.list),
            lo: abs_lo as u32,
            hi: abs_hi as u32,
        }
    }

    /// The nodes in view.
    pub fn nodes(&self) -> &[u32] {
        &self.list.0[self.lo as usize..self.hi as usize]
    }

    /// Number of nodes in view.
    pub fn len(&self) -> usize {
        (self.hi - self.lo) as usize
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.hi == self.lo
    }
}

/// Control-plane messages.
#[derive(Clone, Debug, PartialEq)]
pub enum RmMsg {
    /// Slave announces itself to the master at boot.
    Register { node: u32 },
    /// Master → slave liveness probe (polling RMs).
    Poll,
    /// Slave's answer to a [`RmMsg::Poll`].
    PollReply { load: u8 },
    /// Slave → master periodic heartbeat (push RMs).
    Heartbeat { node: u32 },
    /// Master's acknowledgement of a heartbeat.
    HeartbeatAck,
    /// External job submission (injected by the experiment driver).
    SubmitJob {
        job: u64,
        nodes: NodeSlice,
        runtime_us: u64,
    },
    /// Job-control broadcast: the receiver handles the job locally and
    /// relays to `list` (its subtree) using grouping width `width`.
    JobCtl {
        job: u64,
        kind: CtlKind,
        list: NodeSlice,
        width: u16,
    },
    /// Aggregated acknowledgement flowing back up: `count` nodes handled.
    CtlAck { job: u64, kind: CtlKind, count: u32 },
    /// ESlurm master → satellite: relay a broadcast to `list`.
    BcastTask {
        task: u64,
        job: u64,
        kind: CtlKind,
        list: NodeSlice,
        width: u16,
    },
    /// Satellite → master: broadcast outcome.
    BcastDone {
        task: u64,
        job: u64,
        kind: CtlKind,
        reached: u32,
        ok: bool,
    },
    /// Master → satellite health check.
    SatHeartbeat,
    /// Satellite → master health reply carrying its FSM state id.
    SatHeartbeatAck { state: u8 },
    /// Administrative shutdown of a satellite.
    Shutdown,
    /// User-initiated cancellation of a job (queued or running).
    CancelJob {
        /// The job to cancel.
        job: u64,
    },
    /// A user request (e.g. `squeue`/`sinfo`) arriving at the master.
    StatusQuery {
        /// Request id, echoed in the reply.
        id: u64,
    },
    /// The master's answer to a [`RmMsg::StatusQuery`].
    StatusReply {
        /// Echoed request id.
        id: u64,
    },
}

impl Payload for RmMsg {
    fn size_bytes(&self) -> u32 {
        // 16 bytes of framing/headers plus variant payload; node lists
        // cost four bytes per node on the wire.
        let body = match self {
            RmMsg::Register { .. } => 4,
            RmMsg::Poll | RmMsg::HeartbeatAck | RmMsg::SatHeartbeat | RmMsg::Shutdown => 1,
            RmMsg::PollReply { .. } | RmMsg::SatHeartbeatAck { .. } => 2,
            RmMsg::Heartbeat { .. } => 4,
            RmMsg::SubmitJob { nodes, .. } => 16 + 4 * nodes.len() as u32,
            RmMsg::JobCtl { list, .. } => 12 + 4 * list.len() as u32,
            RmMsg::CtlAck { .. } => 13,
            RmMsg::BcastTask { list, .. } => 20 + 4 * list.len() as u32,
            RmMsg::BcastDone { .. } => 22,
            RmMsg::CancelJob { .. } => 8,
            RmMsg::StatusQuery { .. } => 8,
            RmMsg::StatusReply { .. } => 128, // a screenful of queue state
        };
        16 + body
    }
}

/// Encode a message to bytes (tag byte + fields, lists inline).
pub fn encode(msg: &RmMsg) -> Bytes {
    let mut b = BytesMut::with_capacity(msg.size_bytes() as usize);
    match msg {
        RmMsg::Register { node } => {
            b.put_u8(0);
            b.put_u32(*node);
        }
        RmMsg::Poll => b.put_u8(1),
        RmMsg::PollReply { load } => {
            b.put_u8(2);
            b.put_u8(*load);
        }
        RmMsg::Heartbeat { node } => {
            b.put_u8(3);
            b.put_u32(*node);
        }
        RmMsg::HeartbeatAck => b.put_u8(4),
        RmMsg::SubmitJob {
            job,
            nodes,
            runtime_us,
        } => {
            b.put_u8(5);
            b.put_u64(*job);
            b.put_u64(*runtime_us);
            put_list(&mut b, nodes);
        }
        RmMsg::JobCtl {
            job,
            kind,
            list,
            width,
        } => {
            b.put_u8(6);
            b.put_u64(*job);
            b.put_u8(kind_tag(*kind));
            b.put_u16(*width);
            put_list(&mut b, list);
        }
        RmMsg::CtlAck { job, kind, count } => {
            b.put_u8(7);
            b.put_u64(*job);
            b.put_u8(kind_tag(*kind));
            b.put_u32(*count);
        }
        RmMsg::BcastTask {
            task,
            job,
            kind,
            list,
            width,
        } => {
            b.put_u8(8);
            b.put_u64(*task);
            b.put_u64(*job);
            b.put_u8(kind_tag(*kind));
            b.put_u16(*width);
            put_list(&mut b, list);
        }
        RmMsg::BcastDone {
            task,
            job,
            kind,
            reached,
            ok,
        } => {
            b.put_u8(9);
            b.put_u64(*task);
            b.put_u64(*job);
            b.put_u8(kind_tag(*kind));
            b.put_u32(*reached);
            b.put_u8(u8::from(*ok));
        }
        RmMsg::SatHeartbeat => b.put_u8(10),
        RmMsg::SatHeartbeatAck { state } => {
            b.put_u8(11);
            b.put_u8(*state);
        }
        RmMsg::Shutdown => b.put_u8(12),
        RmMsg::StatusQuery { id } => {
            b.put_u8(13);
            b.put_u64(*id);
        }
        RmMsg::StatusReply { id } => {
            b.put_u8(14);
            b.put_u64(*id);
        }
        RmMsg::CancelJob { job } => {
            b.put_u8(15);
            b.put_u64(*job);
        }
    }
    b.freeze()
}

/// Decode a message produced by [`encode`].
pub fn decode(mut buf: Bytes) -> Option<RmMsg> {
    if buf.is_empty() {
        return None;
    }
    let tag = buf.get_u8();
    // Fixed-size prefix each tag requires before any variable-length list.
    let fixed = match tag {
        0 | 3 => 4,
        1 | 4 | 10 | 12 => 0,
        2 | 11 => 1,
        5 => 16,
        6 => 11,
        7 => 13,
        8 => 19,
        9 => 22,
        13..=15 => 8,
        _ => return None,
    };
    if buf.remaining() < fixed {
        return None;
    }
    Some(match tag {
        0 => RmMsg::Register {
            node: buf.get_u32(),
        },
        1 => RmMsg::Poll,
        2 => RmMsg::PollReply { load: buf.get_u8() },
        3 => RmMsg::Heartbeat {
            node: buf.get_u32(),
        },
        4 => RmMsg::HeartbeatAck,
        5 => {
            let job = buf.get_u64();
            let runtime_us = buf.get_u64();
            RmMsg::SubmitJob {
                job,
                nodes: get_list(&mut buf)?,
                runtime_us,
            }
        }
        6 => {
            let job = buf.get_u64();
            let kind = kind_from(buf.get_u8())?;
            let width = buf.get_u16();
            RmMsg::JobCtl {
                job,
                kind,
                list: get_list(&mut buf)?,
                width,
            }
        }
        7 => RmMsg::CtlAck {
            job: buf.get_u64(),
            kind: kind_from(buf.get_u8())?,
            count: buf.get_u32(),
        },
        8 => {
            let task = buf.get_u64();
            let job = buf.get_u64();
            let kind = kind_from(buf.get_u8())?;
            let width = buf.get_u16();
            RmMsg::BcastTask {
                task,
                job,
                kind,
                list: get_list(&mut buf)?,
                width,
            }
        }
        9 => RmMsg::BcastDone {
            task: buf.get_u64(),
            job: buf.get_u64(),
            kind: kind_from(buf.get_u8())?,
            reached: buf.get_u32(),
            ok: buf.get_u8() != 0,
        },
        10 => RmMsg::SatHeartbeat,
        11 => RmMsg::SatHeartbeatAck {
            state: buf.get_u8(),
        },
        12 => RmMsg::Shutdown,
        13 => RmMsg::StatusQuery { id: buf.get_u64() },
        14 => RmMsg::StatusReply { id: buf.get_u64() },
        15 => RmMsg::CancelJob { job: buf.get_u64() },
        _ => return None,
    })
}

fn kind_tag(k: CtlKind) -> u8 {
    match k {
        CtlKind::Launch => 0,
        CtlKind::Terminate => 1,
        CtlKind::Ping => 2,
    }
}

fn kind_from(t: u8) -> Option<CtlKind> {
    match t {
        0 => Some(CtlKind::Launch),
        1 => Some(CtlKind::Terminate),
        2 => Some(CtlKind::Ping),
        _ => None,
    }
}

fn put_list(b: &mut BytesMut, list: &NodeSlice) {
    b.put_u32(list.len() as u32);
    for n in list.nodes() {
        b.put_u32(*n);
    }
}

fn get_list(buf: &mut Bytes) -> Option<NodeSlice> {
    if buf.remaining() < 4 {
        return None;
    }
    let n = buf.get_u32() as usize;
    if buf.remaining() < 4 * n {
        return None;
    }
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(buf.get_u32());
    }
    Some(NodeSlice::new(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_slice_views_share_storage() {
        let s = NodeSlice::new((0..100).collect());
        let sub = s.slice(10, 20);
        assert_eq!(sub.len(), 10);
        assert_eq!(sub.nodes()[0], 10);
        let subsub = sub.slice(2, 5);
        assert_eq!(subsub.nodes(), &[12, 13, 14]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_slice_panics() {
        NodeSlice::new(vec![1, 2, 3]).slice(1, 5);
    }

    #[test]
    fn dropped_slices_recycle_their_allocation() {
        // Drain whatever earlier tests on this thread left pooled.
        while LIST_POOL.with(|p| !p.borrow().is_empty()) {
            LIST_POOL.with(|p| p.borrow_mut().clear());
        }
        let s = NodeSlice::new(Vec::with_capacity(4096));
        let sub = s.slice(0, 0);
        drop(s);
        // A live clone still pins the buffer.
        assert_eq!(NodeSlice::recycled_buf().capacity(), 0);
        drop(sub);
        let buf = NodeSlice::recycled_buf();
        assert!(buf.capacity() >= 4096, "last drop must pool the buffer");
        assert!(buf.is_empty(), "recycled buffers come back cleared");
        // And `from_nodes` draws from the same pool.
        drop(NodeSlice::new(buf));
        let s = NodeSlice::from_nodes(0..8);
        assert_eq!(s.nodes(), &[0, 1, 2, 3, 4, 5, 6, 7]);
        assert!(
            s.list.0.capacity() >= 4096,
            "from_nodes must reuse the pool"
        );
    }

    #[test]
    fn pool_is_bounded() {
        let bufs: Vec<NodeSlice> = (0..2 * LIST_POOL_MAX)
            .map(|_| NodeSlice::new(Vec::with_capacity(8)))
            .collect();
        drop(bufs);
        assert!(LIST_POOL.with(|p| p.borrow().len()) <= LIST_POOL_MAX);
    }

    #[test]
    fn size_scales_with_list() {
        let small = RmMsg::JobCtl {
            job: 1,
            kind: CtlKind::Launch,
            list: NodeSlice::new(vec![1]),
            width: 32,
        };
        let big = RmMsg::JobCtl {
            job: 1,
            kind: CtlKind::Launch,
            list: NodeSlice::new((0..1000).collect()),
            width: 32,
        };
        assert_eq!(big.size_bytes() - small.size_bytes(), 4 * 999);
    }

    #[test]
    fn encode_decode_round_trips() {
        let msgs = vec![
            RmMsg::Register { node: 7 },
            RmMsg::Poll,
            RmMsg::PollReply { load: 3 },
            RmMsg::Heartbeat { node: 9 },
            RmMsg::HeartbeatAck,
            RmMsg::SubmitJob {
                job: 42,
                nodes: NodeSlice::new(vec![1, 2, 3]),
                runtime_us: 1_000_000,
            },
            RmMsg::JobCtl {
                job: 42,
                kind: CtlKind::Launch,
                list: NodeSlice::new(vec![4, 5]),
                width: 16,
            },
            RmMsg::CtlAck {
                job: 42,
                kind: CtlKind::Terminate,
                count: 12,
            },
            RmMsg::BcastTask {
                task: 1,
                job: 42,
                kind: CtlKind::Terminate,
                list: NodeSlice::new(vec![9]),
                width: 8,
            },
            RmMsg::BcastDone {
                task: 1,
                job: 42,
                kind: CtlKind::Launch,
                reached: 9,
                ok: true,
            },
            RmMsg::SatHeartbeat,
            RmMsg::SatHeartbeatAck { state: 1 },
            RmMsg::Shutdown,
            RmMsg::StatusQuery { id: 99 },
            RmMsg::StatusReply { id: 99 },
            RmMsg::CancelJob { job: 3 },
        ];
        for m in msgs {
            let decoded = decode(encode(&m)).expect("decode");
            assert_eq!(m, decoded);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(decode(Bytes::from_static(&[200])), None);
        assert_eq!(decode(Bytes::new()), None);
        // Truncated list.
        assert!(decode(Bytes::from_static(&[5, 0, 0, 0, 0, 0, 0, 0, 1])).is_none());
    }
}
