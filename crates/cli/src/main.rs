//! `eslurm` — the command-line front-end of the ESlurm reproduction.
//!
//! ```text
//! eslurm gen-trace --jobs 10000 --system tianhe2a --out trace.jsonl
//! eslurm analyze trace.jsonl
//! eslurm replay trace.jsonl --nodes 1024 --policy predictive --algo easy
//! eslurm predict trace.jsonl
//! eslurm simulate --nodes 512 --satellites 4 --minutes 30 --jobs 50
//! eslurm simulate --nodes 256 --faults 3 --obs trace.json
//! eslurm trace --nodes 64 --faults 2 --out trace.json
//! eslurm metrics --nodes 128 --minutes 5 --csv run.csv --prom run.prom
//! eslurm explain 3 --faults 2
//! eslurm critical-path --flow sweep
//! eslurm why-job 17 --jobs 400 --seed 42
//! eslurm sched-report --policy predictive --audit decisions.jsonl
//! eslurm slo-report --faults 3 --sweep-p99 2000000 --check true
//! eslurm diff base.csv new.csv --threshold-pct 5
//! eslurm convert trace.jsonl trace.swf
//! ```
//!
//! The top-level usage text is generated from the same command table that
//! drives dispatch and per-command help ([`cmds::usage`]), so a new
//! subcommand cannot be silently omitted from `eslurm --help`.
//!
//! Exit codes are documented in one place — the [`cmds::EXIT_CODES`]
//! table rendered into `eslurm --help` — and asserted against
//! [`error::CliError::exit_code`] by a unit test.

mod cmds;
mod error;
mod opts;

use error::CliError;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{}", cmds::usage());
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "help" | "--help" | "-h" => {
            println!("{}", cmds::usage());
            Ok(())
        }
        other => cmds::dispatch(other, rest)
            .unwrap_or_else(|| Err(CliError::usage("", format!("unknown command `{other}`")))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            if let CliError::Usage { command, .. } = &e {
                if command.is_empty() {
                    eprintln!("\n{}", cmds::usage());
                } else {
                    print_help_stderr(command);
                }
            }
            ExitCode::from(e.exit_code())
        }
    }
}

/// Reprint the offending subcommand's option list after a usage error.
fn print_help_stderr(command: &str) {
    eprintln!();
    cmds::print_help(command);
}
