//! `eslurm` — the command-line front-end of the ESlurm reproduction.
//!
//! ```text
//! eslurm gen-trace --jobs 10000 --system tianhe2a --out trace.jsonl
//! eslurm analyze trace.jsonl
//! eslurm replay trace.jsonl --nodes 1024 --policy predictive --algo easy
//! eslurm predict trace.jsonl
//! eslurm simulate --nodes 512 --satellites 4 --minutes 30 --jobs 50
//! eslurm simulate --nodes 256 --faults 3 --obs trace.json
//! eslurm trace --nodes 64 --faults 2 --out trace.json
//! eslurm metrics --nodes 128 --minutes 5 --csv run.csv --prom run.prom
//! eslurm explain 3 --faults 2
//! eslurm critical-path --flow sweep
//! eslurm diff base.csv new.csv --threshold-pct 5
//! eslurm convert trace.jsonl trace.swf
//! ```
//!
//! Exit codes: 0 success, 1 runtime failure (I/O, malformed input),
//! 2 command-line usage error, 3 footprint-regression gate tripped.

mod cmds;
mod error;
mod opts;

use error::CliError;
use std::process::ExitCode;

const USAGE: &str = "\
eslurm — distributed resource management, emulated

USAGE:
    eslurm <COMMAND> [OPTIONS]

COMMANDS:
    gen-trace   Generate a synthetic workload trace (.jsonl or .swf)
    analyze     Workload statistics (Fig. 5 analyses) for a trace file
    replay      Replay a trace through the backfill scheduler
    predict     Compare runtime-prediction models on a trace
    simulate    Run an emulated ESlurm cluster and report RM metrics
    trace       Record a Perfetto-loadable trace of a faulted emulated run
    metrics     Sample an emulated run's resource footprint (CSV/Prometheus)
    explain     Reconstruct one trace's causal tree and critical path
    critical-path  Slowest causal chain with per-hop latency breakdown
    diff        Compare two metrics CSVs and gate footprint regressions
    convert     Convert between .jsonl and .swf trace formats
    help        Show this message

Run `eslurm <COMMAND> --help` for per-command options.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "gen-trace" => cmds::gen_trace(rest),
        "analyze" => cmds::analyze(rest),
        "replay" => cmds::replay(rest),
        "predict" => cmds::predict(rest),
        "simulate" => cmds::simulate(rest),
        "trace" => cmds::trace_cmd(rest),
        "metrics" => cmds::metrics(rest),
        "explain" => cmds::explain(rest),
        "critical-path" => cmds::critical_path(rest),
        "diff" => cmds::diff(rest),
        "convert" => cmds::convert(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::usage("", format!("unknown command `{other}`"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            if let CliError::Usage { command, .. } = &e {
                if command.is_empty() {
                    eprintln!("\n{USAGE}");
                } else {
                    print_help_stderr(command);
                }
            }
            ExitCode::from(e.exit_code())
        }
    }
}

/// Reprint the offending subcommand's option list after a usage error.
fn print_help_stderr(command: &str) {
    eprintln!();
    cmds::print_help(command);
}
