//! A small, dependency-free option parser: `--key value` pairs and
//! positional arguments, with typed getters and unknown-flag detection.

use std::collections::BTreeMap;

/// Parsed command-line options.
pub struct Opts {
    flags: BTreeMap<String, String>,
    positional: Vec<String>,
    help: bool,
}

impl Opts {
    /// Parse `args`, accepting only the `known` `--flags`.
    pub fn parse(args: &[String], known: &[&'static str]) -> Result<Opts, String> {
        let mut flags = BTreeMap::new();
        let mut positional = Vec::new();
        let mut help = false;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if a == "--help" || a == "-h" {
                help = true;
            } else if let Some(name) = a.strip_prefix("--") {
                if !known.contains(&name) {
                    return Err(format!(
                        "unknown option --{name} (expected one of: {})",
                        known
                            .iter()
                            .map(|k| format!("--{k}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ));
                }
                let value = it
                    .next()
                    .ok_or_else(|| format!("--{name} needs a value"))?
                    .clone();
                flags.insert(name.to_string(), value);
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Opts {
            flags,
            positional,
            help,
        })
    }

    /// Whether `--help` was requested.
    pub fn wants_help(&self) -> bool {
        self.help
    }

    /// A required positional argument.
    pub fn positional(&self, idx: usize, what: &str) -> Result<&str, String> {
        self.positional
            .get(idx)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing {what} argument"))
    }

    /// An optional string flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(|s| s.as_str())
    }

    /// A typed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("--{name}: {e}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_positionals() {
        let o = Opts::parse(&args(&["file.jsonl", "--jobs", "100"]), &["jobs", "seed"]).unwrap();
        assert_eq!(o.positional(0, "input").unwrap(), "file.jsonl");
        assert_eq!(o.get_or("jobs", 0usize).unwrap(), 100);
        assert_eq!(o.get_or("seed", 42u64).unwrap(), 42);
    }

    #[test]
    fn rejects_unknown_flags() {
        assert!(Opts::parse(&args(&["--bogus", "1"]), &["jobs"]).is_err());
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Opts::parse(&args(&["--jobs"]), &["jobs"]).is_err());
    }

    #[test]
    fn bad_typed_value_reports_flag() {
        let o = Opts::parse(&args(&["--jobs", "abc"]), &["jobs"]).unwrap();
        let err = o.get_or("jobs", 0usize).unwrap_err();
        assert!(err.contains("--jobs"), "{err}");
    }
}
