//! Typed CLI errors.
//!
//! Every subcommand returns `Result<(), CliError>`; `main` maps the
//! variant to an exit code (usage mistakes exit 2, everything else 1)
//! and, for usage errors, reprints the relevant subcommand's help.

use std::fmt;

/// What went wrong while running a CLI command.
#[derive(Debug)]
pub enum CliError {
    /// A filesystem operation failed.
    Io {
        /// What the CLI was doing, e.g. `loading trace.jsonl`.
        context: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// Input data was read but could not be interpreted.
    Parse {
        /// What was being parsed, e.g. the file path.
        context: String,
        /// Parser-level detail.
        detail: String,
    },
    /// The command line itself is wrong: unknown flag, missing argument,
    /// or a value outside the accepted set.
    Usage {
        /// The subcommand the mistake belongs to (empty at top level).
        command: &'static str,
        /// What is wrong.
        message: String,
    },
    /// The footprint-regression gate tripped: gated metrics in the
    /// candidate run grew past their thresholds (`eslurm diff`).
    Regression {
        /// How many metric statistics exceeded their thresholds.
        count: usize,
    },
    /// The SLO gate tripped: specs recorded breaches during the run
    /// (`eslurm slo-report --check`).
    SloUnmet {
        /// How many SLO specs recorded at least one breach.
        count: usize,
    },
}

impl CliError {
    /// An I/O failure while doing `context`.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        CliError::Io {
            context: context.into(),
            source,
        }
    }

    /// A malformed-input failure while parsing `context`.
    pub fn parse(context: impl Into<String>, detail: impl Into<String>) -> Self {
        CliError::Parse {
            context: context.into(),
            detail: detail.into(),
        }
    }

    /// A command-line mistake on `command`.
    pub fn usage(command: &'static str, message: impl Into<String>) -> Self {
        CliError::Usage {
            command,
            message: message.into(),
        }
    }

    /// The process exit code this error maps to.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage { .. } => 2,
            CliError::Regression { .. } => 3,
            CliError::SloUnmet { .. } => 4,
            _ => 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Io { context, source } => write!(f, "{context}: {source}"),
            CliError::Parse { context, detail } => write!(f, "{context}: {detail}"),
            CliError::Usage {
                command: "",
                message,
            } => write!(f, "{message}"),
            CliError::Usage { command, message } => write!(f, "{command}: {message}"),
            CliError::Regression { count } => {
                write!(f, "{count} metric statistic(s) regressed past threshold")
            }
            CliError::SloUnmet { count } => {
                write!(f, "{count} SLO spec(s) recorded breaches")
            }
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_errors_exit_2_others_1() {
        assert_eq!(CliError::usage("replay", "bad flag").exit_code(), 2);
        assert_eq!(CliError::parse("t.jsonl", "empty").exit_code(), 1);
        assert_eq!(CliError::Regression { count: 2 }.exit_code(), 3);
        assert_eq!(CliError::SloUnmet { count: 1 }.exit_code(), 4);
        let io = CliError::io(
            "loading x",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        assert_eq!(io.exit_code(), 1);
    }

    #[test]
    fn display_carries_context() {
        let e = CliError::parse("trace.swf", "trace is empty");
        assert_eq!(e.to_string(), "trace.swf: trace is empty");
        let u = CliError::usage("simulate", "unknown --algo wat");
        assert_eq!(u.to_string(), "simulate: unknown --algo wat");
    }

    #[test]
    fn io_source_is_exposed() {
        use std::error::Error;
        let e = CliError::io(
            "writing out.json",
            std::io::Error::new(std::io::ErrorKind::PermissionDenied, "ro"),
        );
        assert!(e.source().is_some());
    }
}
