//! The CLI subcommands.

use crate::error::CliError;
use crate::opts::Opts;
use emu::{FaultPlan, FaultPlanBuilder, NodeId, Outage};
use eslurm::{EslurmConfig, EslurmSystem, EslurmSystemBuilder, PredictiveLimit};
use estimate::{
    evaluate, forest_baseline, svm_baseline, EslurmPredictor, EstimatorConfig, Irpa, Last2, Prep,
    RuntimePredictor, Trip, UserEstimate,
};
use obs::audit::{render_report, render_timeline, AuditReport};
use obs::causal::{render_critical_path, render_flow_summaries, render_tree};
use obs::{
    build_traces, compare_csv, flow_summaries, mem_profile_compiled, DecisionLog, DiffOptions,
    EngineProfiler, FlightConfig, FlowKind, MemProfiler, Recorder, Sampler, SeriesStore, SloEngine,
    TraceTree,
};
use sched::prelude::{
    simulate as run_schedule, BackfillConfig, FairShareLedger, LimitPolicy, MultifactorPriority,
    OracleLimit, SchedAlgo, SchedPolicies, ScheduleReport, UserLimit,
};
use simclock::{SimSpan, SimTime};
use std::path::Path;
use workload::{stats, swf, trace, Job, TraceConfig};

/// One subcommand: its name, a one-line summary, and the flags it takes.
pub struct CmdSpec {
    /// The subcommand name as typed on the command line.
    pub name: &'static str,
    /// One-line summary shown in help.
    pub summary: &'static str,
    /// Accepted `--flags`.
    pub flags: &'static [&'static str],
}

/// Every subcommand the CLI knows, in help order.
pub const COMMANDS: &[CmdSpec] = &[
    CmdSpec {
        name: "gen-trace",
        summary: "generate a synthetic workload trace",
        flags: &["jobs", "system", "seed", "out"],
    },
    CmdSpec {
        name: "analyze",
        summary: "workload statistics for a trace",
        flags: &["samples", "seed"],
    },
    CmdSpec {
        name: "replay",
        summary: "replay a trace through the backfill scheduler",
        flags: &["nodes", "policy", "algo", "resubmits", "obs"],
    },
    CmdSpec {
        name: "predict",
        summary: "compare runtime-prediction models",
        flags: &["warmup", "window", "seed"],
    },
    CmdSpec {
        name: "simulate",
        summary: "run an emulated ESlurm cluster",
        flags: &[
            "nodes",
            "satellites",
            "minutes",
            "jobs",
            "seed",
            "faults",
            "obs",
        ],
    },
    CmdSpec {
        name: "trace",
        summary: "record an execution trace of an emulated faulted run",
        flags: &[
            "nodes",
            "satellites",
            "minutes",
            "jobs",
            "seed",
            "faults",
            "out",
            "format",
        ],
    },
    CmdSpec {
        name: "metrics",
        summary: "sample an emulated run's resource footprint",
        flags: &[
            "nodes",
            "satellites",
            "minutes",
            "jobs",
            "seed",
            "faults",
            "interval",
            "csv",
            "prom",
            "flight",
        ],
    },
    CmdSpec {
        name: "explain",
        summary: "reconstruct one trace's causal tree and critical path",
        flags: &["nodes", "satellites", "minutes", "jobs", "seed", "faults"],
    },
    CmdSpec {
        name: "critical-path",
        summary: "slowest causal chain with per-hop latency breakdown",
        flags: &[
            "nodes",
            "satellites",
            "minutes",
            "jobs",
            "seed",
            "faults",
            "flow",
        ],
    },
    CmdSpec {
        name: "why-job",
        summary: "decision timeline of one job in an audited backfill run",
        flags: &[
            "trace",
            "nodes",
            "algo",
            "policy",
            "resubmits",
            "jobs",
            "seed",
            "users",
            "banks",
            "priority",
        ],
    },
    CmdSpec {
        name: "sched-report",
        summary: "backfill hit-rate, skip reasons, and estimator accuracy",
        flags: &[
            "trace",
            "nodes",
            "algo",
            "policy",
            "resubmits",
            "jobs",
            "seed",
            "users",
            "banks",
            "priority",
            "audit",
            "obs",
        ],
    },
    CmdSpec {
        name: "engine-report",
        summary: "wall-clock per-shard profile of the simulation engine",
        flags: &[
            "nodes",
            "satellites",
            "minutes",
            "jobs",
            "seed",
            "faults",
            "shards",
            "csv",
            "trace",
        ],
    },
    CmdSpec {
        name: "slo-report",
        summary: "evaluate SLOs online over an emulated run and gate breaches",
        flags: &[
            "nodes",
            "satellites",
            "minutes",
            "jobs",
            "seed",
            "faults",
            "sweep-p99",
            "queue-wait-p90",
            "inbox-depth",
            "format",
            "out",
            "flight",
            "check",
        ],
    },
    CmdSpec {
        name: "mem-report",
        summary: "per-subsystem host-heap attribution of an emulated run",
        flags: &[
            "nodes",
            "satellites",
            "minutes",
            "jobs",
            "seed",
            "faults",
            "shards",
            "format",
            "out",
            "csv",
        ],
    },
    CmdSpec {
        name: "diff",
        summary: "compare two metrics CSVs and gate footprint regressions",
        flags: &[
            "threshold-pct",
            "thresholds",
            "all",
            "include-wallclock",
            "include-domain",
        ],
    },
    CmdSpec {
        name: "convert",
        summary: "convert between .jsonl and .swf traces",
        flags: &["cores-per-node"],
    },
];

/// The top-level usage text, enumerating every subcommand from
/// [`COMMANDS`] — the one table — so a new command registered there can
/// never be silently missing from `eslurm --help`.
pub fn usage() -> String {
    let width = COMMANDS
        .iter()
        .map(|c| c.name.len())
        .max()
        .unwrap_or(0)
        .max("help".len());
    let mut out = String::from(
        "eslurm — distributed resource management, emulated\n\n\
         USAGE:\n    eslurm <COMMAND> [OPTIONS]\n\nCOMMANDS:\n",
    );
    for c in COMMANDS {
        out.push_str(&format!("    {:<width$}  {}\n", c.name, c.summary));
    }
    out.push_str(&format!("    {:<width$}  show this message\n", "help"));
    out.push_str("\nEXIT CODES:\n");
    out.push_str(EXIT_CODES);
    out.push_str("\nRun `eslurm <COMMAND> --help` for per-command options.");
    out
}

/// The one exit-code table, rendered into the generated help. Commands
/// that gate (`diff`, `slo-report --check`) document their codes here,
/// nowhere else — a unit test asserts each listed code matches what
/// [`CliError::exit_code`] actually returns.
pub const EXIT_CODES: &str = "    0  success\n    \
     1  runtime failure (I/O, malformed input)\n    \
     2  command-line usage error\n    \
     3  footprint-regression gate tripped (`diff`)\n    \
     4  SLO gate tripped (`slo-report --check`)\n";

/// Route a subcommand name to its implementation. Returns `None` for
/// names not in [`COMMANDS`], so `main` treats them as usage errors; a
/// unit test asserts every registered command dispatches.
pub fn dispatch(cmd: &str, rest: &[String]) -> Option<Result<(), CliError>> {
    Some(match cmd {
        "gen-trace" => gen_trace(rest),
        "analyze" => analyze(rest),
        "replay" => replay(rest),
        "predict" => predict(rest),
        "simulate" => simulate(rest),
        "trace" => trace_cmd(rest),
        "metrics" => metrics(rest),
        "explain" => explain(rest),
        "critical-path" => critical_path(rest),
        "why-job" => why_job(rest),
        "sched-report" => sched_report(rest),
        "engine-report" => engine_report(rest),
        "slo-report" => slo_report(rest),
        "mem-report" => mem_report(rest),
        "diff" => diff(rest),
        "convert" => convert(rest),
        _ => return None,
    })
}

fn spec(name: &str) -> Option<&'static CmdSpec> {
    COMMANDS.iter().find(|c| c.name == name)
}

/// Print the option list for `name` (used for `--help` and after usage
/// errors). Unknown names print nothing.
pub fn print_help(name: &str) {
    if let Some(s) = spec(name) {
        println!("eslurm {} — {}\noptions:", s.name, s.summary);
        for k in s.flags {
            println!("    --{k} <value>");
        }
    }
}

/// Parse `args` against the subcommand's declared flags.
fn parse_opts(name: &'static str, args: &[String]) -> Result<Opts, CliError> {
    let s = spec(name).expect("command registered in COMMANDS");
    Opts::parse(args, s.flags).map_err(|e| CliError::usage(name, e))
}

/// A typed flag with a default; bad values are usage errors.
fn flag_or<T: std::str::FromStr>(
    cmd: &'static str,
    o: &Opts,
    name: &str,
    default: T,
) -> Result<T, CliError>
where
    T::Err: std::fmt::Display,
{
    o.get_or(name, default).map_err(|e| CliError::usage(cmd, e))
}

fn load_trace(path: &str) -> Result<Vec<Job>, CliError> {
    let p = Path::new(path);
    let jobs = if path.ends_with(".swf") {
        swf::load_swf(p, &swf::SwfImportOptions::default())
    } else {
        trace::load_jsonl(p)
    }
    .map_err(|e| CliError::io(format!("loading {path}"), e))?;
    if jobs.is_empty() {
        return Err(CliError::parse(path, "trace is empty"));
    }
    Ok(jobs)
}

fn save_trace(jobs: &[Job], path: &str) -> Result<(), CliError> {
    let p = Path::new(path);
    if path.ends_with(".swf") {
        swf::save_swf(jobs, p)
    } else {
        trace::save_jsonl(jobs, p)
    }
    .map_err(|e| CliError::io(format!("writing {path}"), e))
}

/// Serialize the recorded events in the requested format and write them.
fn write_obs(rec: &Recorder, path: &str, format: &str) -> Result<usize, CliError> {
    let events = rec.events();
    let body = match format {
        // Chrome traces get flow events too, so Perfetto draws the
        // cross-node causal arrows between the span slices.
        "chrome" => obs::export::to_chrome_trace_with_flows(&events, &rec.causal_records()),
        "jsonl" => obs::export::to_jsonl(&events),
        other => {
            return Err(CliError::usage(
                "trace",
                format!("unknown --format {other} (chrome | jsonl)"),
            ))
        }
    };
    std::fs::write(path, body).map_err(|e| CliError::io(format!("writing {path}"), e))?;
    Ok(events.len())
}

/// Trace format implied by a file name: `.jsonl` means line-delimited
/// events, anything else the Chrome trace JSON Perfetto loads.
fn format_for(path: &str) -> &'static str {
    if path.ends_with(".jsonl") {
        "jsonl"
    } else {
        "chrome"
    }
}

/// `eslurm gen-trace --jobs N --system tianhe2a|ng --seed S --out FILE`
pub fn gen_trace(args: &[String]) -> Result<(), CliError> {
    const CMD: &str = "gen-trace";
    let o = parse_opts(CMD, args)?;
    if o.wants_help() {
        print_help(CMD);
        return Ok(());
    }
    let system = o.get("system").unwrap_or("tianhe2a");
    let seed = flag_or(CMD, &o, "seed", 42u64)?;
    let mut cfg = match system {
        "tianhe2a" => TraceConfig::tianhe2a(),
        "ng" | "ng-tianhe" => TraceConfig::ng_tianhe(),
        other => {
            return Err(CliError::usage(
                CMD,
                format!("unknown --system {other} (tianhe2a | ng)"),
            ))
        }
    }
    .with_seed(seed);
    let jobs = flag_or(CMD, &o, "jobs", 0usize)?;
    if jobs > 0 {
        cfg = cfg.shrunk_to(jobs);
    }
    let out = o.get("out").unwrap_or("trace.jsonl");
    let generated = cfg.generate();
    save_trace(&generated, out)?;
    let s = stats::summarize(&generated);
    println!(
        "wrote {} jobs ({} users, {} job names) to {out}",
        s.jobs, s.users, s.names
    );
    Ok(())
}

/// `eslurm analyze FILE`
pub fn analyze(args: &[String]) -> Result<(), CliError> {
    const CMD: &str = "analyze";
    let o = parse_opts(CMD, args)?;
    if o.wants_help() {
        print_help(CMD);
        return Ok(());
    }
    let path = o
        .positional(0, "trace file")
        .map_err(|e| CliError::usage(CMD, e))?;
    let jobs = load_trace(path)?;
    let samples = flag_or(CMD, &o, "samples", 20_000usize)?;
    let seed = flag_or(CMD, &o, "seed", 1u64)?;

    let s = stats::summarize(&jobs);
    println!("jobs: {}   users: {}   names: {}", s.jobs, s.users, s.names);
    println!(
        "mean runtime: {:.0}s   mean nodes: {:.1}",
        s.mean_runtime_s, s.mean_nodes
    );
    println!(
        "user estimates: {:.1}% overestimated (P > 1)",
        100.0 * s.frac_overestimated
    );
    println!(
        "24h same-job resubmission: per-user {:.3} / per-job {:.3}",
        stats::resubmit_within_24h_prob(&jobs),
        stats::resubmit_within_24h_prob_job_weighted(&jobs)
    );
    println!(
        ">6h jobs submitted 18:00-24:00: {:.1}%",
        100.0 * stats::frac_long_jobs_in_evening(&jobs)
    );
    println!("\ncorrelation vs submission interval (hours):");
    for (h, r) in
        stats::correlation_vs_interval(&jobs, &[0.0, 1.0, 10.0, 30.0, 100.0], samples, seed)
    {
        println!("    {h:6.1}h  {r:.3}");
    }
    println!("correlation vs job-ID gap:");
    for (g, r) in stats::correlation_vs_id_gap(&jobs, &[1, 10, 100, 700, 2000], samples, seed) {
        println!("    {g:6}    {r:.3}");
    }
    println!("\njob-size histogram (nodes <= bucket):");
    for (bound, count) in stats::size_histogram(&jobs) {
        if count > 0 {
            println!("    {bound:6}  {count}");
        }
    }
    Ok(())
}

/// `eslurm replay FILE --nodes N --policy user|predictive|oracle --algo ...
/// [--obs trace.json]`
pub fn replay(args: &[String]) -> Result<(), CliError> {
    const CMD: &str = "replay";
    let o = parse_opts(CMD, args)?;
    if o.wants_help() {
        print_help(CMD);
        return Ok(());
    }
    let path = o
        .positional(0, "trace file")
        .map_err(|e| CliError::usage(CMD, e))?;
    let jobs = load_trace(path)?;
    let nodes = flag_or(CMD, &o, "nodes", 1024u32)?;
    let algo = parse_algo(CMD, &o)?;
    let mut policy = parse_policy(CMD, &o, "user")?;
    let rec = if o.get("obs").is_some() {
        Recorder::full()
    } else {
        Recorder::disabled()
    };
    let cfg = BackfillConfig {
        algo,
        max_resubmits: flag_or(CMD, &o, "resubmits", 3u32)?,
        obs: rec.clone(),
        ..BackfillConfig::new(nodes)
    };
    println!(
        "replaying {} jobs on {nodes} nodes ({:?}, {} limits) ...",
        jobs.len(),
        algo,
        policy.name()
    );
    let r = run_schedule(&jobs, policy.as_mut(), &cfg);
    println!("completed:        {}", r.completed);
    println!("killed at limit:  {} ({} abandoned)", r.killed, r.abandoned);
    println!(
        "utilization:      {:.3} (useful {:.3})",
        r.utilization(),
        r.useful_utilization()
    );
    println!("avg wait:         {:.0}s", r.avg_wait().as_secs_f64());
    println!("avg slowdown:     {:.2}", r.avg_slowdown());
    println!(
        "makespan:         {:.1}h",
        r.makespan.as_secs_f64() / 3600.0
    );
    if let Some(out) = o.get("obs") {
        let n = write_obs(&rec, out, format_for(out))?;
        println!("trace:            {n} events -> {out}");
    }
    Ok(())
}

/// `eslurm predict FILE [--warmup N] [--window N]`
pub fn predict(args: &[String]) -> Result<(), CliError> {
    const CMD: &str = "predict";
    let o = parse_opts(CMD, args)?;
    if o.wants_help() {
        print_help(CMD);
        return Ok(());
    }
    let path = o
        .positional(0, "trace file")
        .map_err(|e| CliError::usage(CMD, e))?;
    let jobs = load_trace(path)?;
    let warmup = flag_or(CMD, &o, "warmup", jobs.len() / 10)?;
    let window = flag_or(CMD, &o, "window", 2000usize)?;
    let seed = flag_or(CMD, &o, "seed", 7u64)?;
    let mut models: Vec<Box<dyn RuntimePredictor>> = vec![
        Box::new(UserEstimate),
        Box::new(Last2::default()),
        Box::new(svm_baseline(window.min(700))),
        Box::new(forest_baseline(window.min(700), seed)),
        Box::new(Irpa::new(window.min(700), seed + 1)),
        Box::new(Trip::new(window.min(700))),
        Box::new(Prep::new(window.min(700), seed + 2)),
        Box::new(EslurmPredictor::new(EstimatorConfig {
            window,
            ..Default::default()
        })),
    ];
    println!(
        "{:14} {:>9} {:>14} {:>9}",
        "model", "accuracy", "underestimate", "coverage"
    );
    for m in &mut models {
        let r = evaluate(&jobs, m.as_mut(), warmup);
        println!(
            "{:14} {:>9.3} {:>14.3} {:>9.2}",
            r.name, r.aea, r.underestimate_rate, r.coverage
        );
    }
    Ok(())
}

/// Shared emulation driver for `simulate` and `trace`: a cluster of
/// `nodes` compute nodes + `satellites` satellites running a synthetic
/// job stream for `minutes` of virtual time, optionally with `fault_events`
/// small outage events hitting the compute nodes.
#[allow(clippy::too_many_arguments)]
fn run_emulation(
    nodes: usize,
    satellites: usize,
    minutes: u64,
    n_jobs: u64,
    seed: u64,
    fault_events: usize,
    rec: Recorder,
    sampler: Sampler,
    shards: usize,
    engine: EngineProfiler,
    slo: SloEngine,
    mem: MemProfiler,
) -> EslurmSystem {
    let cfg = EslurmConfig {
        n_satellites: satellites,
        eq1_width: (nodes / satellites.max(1)).max(32),
        relay_width: 32,
        ..Default::default()
    };
    let mut builder = EslurmSystemBuilder::new(cfg, nodes, seed)
        .obs(rec)
        .sampler(sampler)
        .shards(shards)
        .engine_profile(engine)
        .slo(slo)
        .mem_profile(mem);
    if fault_events > 0 {
        builder = builder.faults(compute_fault_plan(
            nodes,
            satellites,
            minutes,
            fault_events,
            seed,
        ));
    }
    let mut sys = builder.build();
    let horizon = SimTime::ZERO + SimSpan::from_secs(minutes * 60);
    for j in 0..n_jobs {
        let size = ((j % 5 + 1) as usize * nodes / 8).max(1).min(nodes);
        let start = (j as usize * 13) % (nodes - size + 1);
        sys.submit(
            SimTime::from_secs(5 + j * 7),
            j,
            &(start..start + size).collect::<Vec<_>>(),
            SimSpan::from_secs(60),
        );
    }
    sys.sim.run_until(horizon);
    sys
}

/// A plan of `events` small outages on the *compute* nodes: the builder
/// draws node ids in `0..nodes` compute space, which we shift past the
/// master and satellites into the deployment's global id space.
fn compute_fault_plan(
    nodes: usize,
    satellites: usize,
    minutes: u64,
    events: usize,
    seed: u64,
) -> FaultPlan {
    let horizon = SimSpan::from_secs(minutes * 60);
    let plan = FaultPlanBuilder::new(nodes, horizon, seed ^ 0xFA17)
        .small_events(events, 4)
        .mean_outage(SimSpan::from_secs(120))
        .build();
    let offset = (1 + satellites) as u32;
    let shifted: Vec<Outage> = plan
        .outages()
        .iter()
        .map(|o| Outage {
            node: NodeId(o.node.0 + offset),
            ..*o
        })
        .collect();
    FaultPlan::from_outages(1 + satellites + nodes, shifted)
}

/// `eslurm simulate --nodes N --satellites M --minutes T --jobs J
/// [--faults K] [--obs trace.json]`
pub fn simulate(args: &[String]) -> Result<(), CliError> {
    const CMD: &str = "simulate";
    let o = parse_opts(CMD, args)?;
    if o.wants_help() {
        print_help(CMD);
        return Ok(());
    }
    let nodes = flag_or(CMD, &o, "nodes", 256usize)?;
    let satellites = flag_or(CMD, &o, "satellites", 2usize)?;
    let minutes = flag_or(CMD, &o, "minutes", 10u64)?;
    let n_jobs = flag_or(CMD, &o, "jobs", 20u64)?;
    let seed = flag_or(CMD, &o, "seed", 42u64)?;
    let fault_events = flag_or(CMD, &o, "faults", 0usize)?;

    let rec = if o.get("obs").is_some() {
        Recorder::full()
    } else {
        Recorder::disabled()
    };
    let sys = run_emulation(
        nodes,
        satellites,
        minutes,
        n_jobs,
        seed,
        fault_events,
        rec.clone(),
        Sampler::disabled(),
        1,
        EngineProfiler::disabled(),
        SloEngine::disabled(),
        MemProfiler::disabled(),
    );

    let master = sys.master();
    println!(
        "emulated {nodes} compute nodes + {satellites} satellites for {minutes} virtual minutes"
    );
    println!("jobs completed:    {}/{n_jobs}", master.records.len());
    if let Some(r) = master.records.first() {
        println!("first occupation:  {:.3}s", r.occupation().as_secs_f64());
    }
    println!("heartbeat sweeps:  {}", master.sweeps.len());
    println!(
        "reassignments:     {}   takeovers: {}",
        master.reassignments, master.takeovers
    );
    let m = sys.sim.meter(emu::NodeId::MASTER);
    println!(
        "master meters:     cpu {:.1}s  virt {:.2} GiB  real {:.1} MiB  peak sockets {}",
        m.cpu_time().as_secs_f64(),
        m.virt_mem() as f64 / (1u64 << 30) as f64,
        m.real_mem() as f64 / (1u64 << 20) as f64,
        m.peak_sockets()
    );
    println!("events processed:  {}", sys.sim.events_processed());
    if let Some(out) = o.get("obs") {
        let n = write_obs(&rec, out, format_for(out))?;
        println!("trace:             {n} events -> {out}");
        print!("{}", rec.summary());
    }
    Ok(())
}

/// `eslurm trace --nodes N --satellites M --minutes T --jobs J --seed S
/// --faults K --out FILE --format chrome|jsonl`
pub fn trace_cmd(args: &[String]) -> Result<(), CliError> {
    const CMD: &str = "trace";
    let o = parse_opts(CMD, args)?;
    if o.wants_help() {
        print_help(CMD);
        return Ok(());
    }
    let nodes = flag_or(CMD, &o, "nodes", 64usize)?;
    let satellites = flag_or(CMD, &o, "satellites", 2usize)?;
    let minutes = flag_or(CMD, &o, "minutes", 5u64)?;
    let n_jobs = flag_or(CMD, &o, "jobs", 10u64)?;
    let seed = flag_or(CMD, &o, "seed", 42u64)?;
    let fault_events = flag_or(CMD, &o, "faults", 2usize)?;
    let out = o.get("out").unwrap_or("trace.json");
    let format = o.get("format").unwrap_or_else(|| format_for(out));

    let rec = Recorder::full();
    let sys = run_emulation(
        nodes,
        satellites,
        minutes,
        n_jobs,
        seed,
        fault_events,
        rec.clone(),
        Sampler::disabled(),
        1,
        EngineProfiler::disabled(),
        SloEngine::disabled(),
        MemProfiler::disabled(),
    );
    let n = write_obs(&rec, out, format)?;
    println!(
        "traced {nodes}+{satellites} nodes for {minutes} virtual minutes: \
         {n} events -> {out} ({format})"
    );
    println!("jobs completed:    {}/{n_jobs}", sys.master().records.len());
    print!("{}", rec.summary());
    Ok(())
}

/// `eslurm metrics --nodes N --satellites M --minutes T --jobs J --seed S
/// [--faults K] [--interval SECS] [--csv FILE] [--prom FILE]
/// [--flight FILE]`
///
/// Runs the same emulation as `simulate` with the footprint sampler on,
/// prints per-series summaries (mean and percentiles), and optionally
/// exports the time series as CSV (the `diff` input format), the final
/// metric values in Prometheus text format, and — when `--flight` names a
/// file — arms the bounded flight ring, dumping it there at the end of the
/// run (faulted runs also auto-dump on the first `node_down`).
pub fn metrics(args: &[String]) -> Result<(), CliError> {
    const CMD: &str = "metrics";
    let o = parse_opts(CMD, args)?;
    if o.wants_help() {
        print_help(CMD);
        return Ok(());
    }
    let nodes = flag_or(CMD, &o, "nodes", 128usize)?;
    let satellites = flag_or(CMD, &o, "satellites", 2usize)?;
    let minutes = flag_or(CMD, &o, "minutes", 5u64)?;
    let n_jobs = flag_or(CMD, &o, "jobs", 10u64)?;
    let seed = flag_or(CMD, &o, "seed", 42u64)?;
    let fault_events = flag_or(CMD, &o, "faults", 0usize)?;
    let interval_s = flag_or(CMD, &o, "interval", 1u64)?;
    if interval_s == 0 {
        return Err(CliError::usage(CMD, "--interval must be at least 1"));
    }

    let rec = match o.get("flight") {
        Some(path) => Recorder::with_flight(FlightConfig::dumping_to(path)),
        None => Recorder::metrics_only(),
    };
    let horizon = SimTime::ZERO + SimSpan::from_secs(minutes * 60);
    let sampler = Sampler::every_until(SimSpan::from_secs(interval_s), horizon);
    let sys = run_emulation(
        nodes,
        satellites,
        minutes,
        n_jobs,
        seed,
        fault_events,
        rec.clone(),
        sampler.clone(),
        1,
        EngineProfiler::disabled(),
        SloEngine::disabled(),
        MemProfiler::disabled(),
    );

    let store = sampler.store();
    println!(
        "sampled {} series ({} points) every {interval_s}s over {minutes} \
         virtual minutes; {}/{n_jobs} jobs completed",
        store.len(),
        store.n_points(),
        sys.master().records.len()
    );
    println!(
        "{:<44} {:>6} {:>12} {:>12} {:>12} {:>12}",
        "series", "n", "mean", "p50", "p99", "max"
    );
    for (id, s) in sampler.summaries() {
        println!(
            "{:<44} {:>6} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
            id.to_string(),
            s.count,
            s.mean,
            s.p50,
            s.p99,
            s.max
        );
    }
    if let Some(path) = o.get("csv") {
        std::fs::write(path, sampler.to_csv())
            .map_err(|e| CliError::io(format!("writing {path}"), e))?;
        println!("csv:    {} series -> {path}", store.len());
    }
    if let Some(path) = o.get("prom") {
        std::fs::write(path, obs::export::to_prometheus(&rec))
            .map_err(|e| CliError::io(format!("writing {path}"), e))?;
        println!("prom:   final exposition -> {path}");
    }
    if let Some(path) = o.get("flight") {
        match rec.flight_dump() {
            Some(Ok(n)) => println!("flight: {n} events -> {path}"),
            Some(Err(e)) => {
                return Err(CliError::io(format!("writing {path}"), e));
            }
            None => {}
        }
    }
    Ok(())
}

/// Run the reference fault scenario (the same defaults as `eslurm trace`)
/// with full causal tracing on and rebuild the per-trace causal trees.
fn causal_run(cmd: &'static str, o: &Opts) -> Result<Vec<TraceTree>, CliError> {
    let nodes = flag_or(cmd, o, "nodes", 64usize)?;
    let satellites = flag_or(cmd, o, "satellites", 2usize)?;
    let minutes = flag_or(cmd, o, "minutes", 5u64)?;
    let n_jobs = flag_or(cmd, o, "jobs", 10u64)?;
    let seed = flag_or(cmd, o, "seed", 42u64)?;
    let fault_events = flag_or(cmd, o, "faults", 2usize)?;
    let rec = Recorder::full();
    run_emulation(
        nodes,
        satellites,
        minutes,
        n_jobs,
        seed,
        fault_events,
        rec.clone(),
        Sampler::disabled(),
        1,
        EngineProfiler::disabled(),
        SloEngine::disabled(),
        MemProfiler::disabled(),
    );
    Ok(build_traces(&rec.causal_records()))
}

/// `eslurm explain TRACE-ID [--nodes N --satellites M --minutes T
/// --jobs J --seed S --faults K]`
///
/// Re-runs the (deterministic) scenario with causal tracing on, then
/// prints the full causal tree of the requested trace followed by its
/// critical path with the per-hop latency breakdown.
pub fn explain(args: &[String]) -> Result<(), CliError> {
    const CMD: &str = "explain";
    let o = parse_opts(CMD, args)?;
    if o.wants_help() {
        print_help(CMD);
        return Ok(());
    }
    let id_str = o
        .positional(0, "trace id")
        .map_err(|e| CliError::usage(CMD, e))?;
    let id: u64 = id_str
        .parse()
        .map_err(|_| CliError::usage(CMD, format!("trace id `{id_str}` is not an integer")))?;
    let trees = causal_run(CMD, &o)?;
    let Some(tree) = trees.iter().find(|t| t.trace == id) else {
        let last = trees.last().map(|t| t.trace).unwrap_or(0);
        return Err(CliError::parse(
            CMD,
            format!(
                "trace {id} was not recorded ({} traces, ids 1..={last})",
                trees.len()
            ),
        ));
    };
    print!("{}", render_tree(tree));
    print!("{}", render_critical_path(&tree.critical_path()));
    Ok(())
}

/// `eslurm critical-path [--flow dispatch|sweep|recovery] [--nodes N
/// --satellites M --minutes T --jobs J --seed S --faults K]`
///
/// Re-runs the (deterministic) scenario with causal tracing on, prints the
/// slowest chain across all traces (optionally restricted to one flow
/// kind) with its per-hop breakdown, then latency percentiles per flow.
pub fn critical_path(args: &[String]) -> Result<(), CliError> {
    const CMD: &str = "critical-path";
    let o = parse_opts(CMD, args)?;
    if o.wants_help() {
        print_help(CMD);
        return Ok(());
    }
    let flow = match o.get("flow") {
        Some(s) => Some(FlowKind::parse(s).ok_or_else(|| {
            CliError::usage(
                CMD,
                format!("unknown --flow {s} (dispatch | sweep | recovery)"),
            )
        })?),
        None => None,
    };
    let trees = causal_run(CMD, &o)?;
    let selected: Vec<TraceTree> = trees
        .into_iter()
        .filter(|t| flow.is_none_or(|f| t.flow == f))
        .collect();
    if selected.is_empty() {
        return Err(CliError::parse(
            CMD,
            "no traces recorded for the requested flow",
        ));
    }
    let slowest = selected
        .iter()
        .map(|t| t.critical_path())
        .max_by_key(|p| (p.end_to_end_us, std::cmp::Reverse(p.trace)))
        .expect("selected is non-empty");
    match flow {
        Some(f) => println!("slowest of {} {} trace(s):", selected.len(), f.name()),
        None => println!("slowest of {} trace(s):", selected.len()),
    }
    print!("{}", render_critical_path(&slowest));
    print!("{}", render_flow_summaries(&flow_summaries(&selected)));
    Ok(())
}

/// `--algo easy|fcfs|conservative` (shared by replay and the audit
/// commands).
fn parse_algo(cmd: &'static str, o: &Opts) -> Result<SchedAlgo, CliError> {
    match o.get("algo").unwrap_or("easy") {
        "easy" => Ok(SchedAlgo::Easy),
        "fcfs" => Ok(SchedAlgo::Fcfs),
        "conservative" => Ok(SchedAlgo::Conservative),
        other => Err(CliError::usage(
            cmd,
            format!("unknown --algo {other} (easy | fcfs | conservative)"),
        )),
    }
}

/// `--policy user|predictive|oracle` with a per-command default.
fn parse_policy(
    cmd: &'static str,
    o: &Opts,
    default: &'static str,
) -> Result<Box<dyn LimitPolicy>, CliError> {
    match o.get("policy").unwrap_or(default) {
        "user" => Ok(Box::new(UserLimit::default())),
        "predictive" => Ok(Box::new(PredictiveLimit::new(EstimatorConfig::default()))),
        "oracle" => Ok(Box::new(OracleLimit)),
        other => Err(CliError::usage(
            cmd,
            format!("unknown --policy {other} (user | predictive | oracle)"),
        )),
    }
}

/// One audited backfill run shared by `why-job` and `sched-report`.
struct AuditRun {
    n_jobs: usize,
    nodes: u32,
    algo: SchedAlgo,
    policy_name: String,
    log: DecisionLog,
    report: ScheduleReport,
    rec: Recorder,
}

/// `--priority fifo|multifactor [--users N --banks B]` → the policy-layer
/// bundle of an audited run. `fifo` (the default) is the trivial bundle —
/// bit-identical to the pre-policy scheduler; `multifactor` turns on the
/// Slurm-flavored composition with a 24 h-half-life fair-share ledger.
fn parse_policies(cmd: &'static str, o: &Opts, banks: usize) -> Result<SchedPolicies, CliError> {
    match o.get("priority").unwrap_or("fifo") {
        "fifo" => Ok(SchedPolicies::default()),
        "multifactor" => Ok(SchedPolicies::default()
            .with_priority(MultifactorPriority::slurm_default())
            .with_fairshare(FairShareLedger::new(SimSpan::from_hours(24), banks as u32))),
        other => Err(CliError::usage(
            cmd,
            format!("unknown --priority {other} (fifo | multifactor)"),
        )),
    }
}

/// Run the backfill simulation with the decision audit log on: either a
/// `--trace FILE` replay or the deterministic synthetic default scenario
/// (whose seed/jobs/nodes are tuned so backfills, skips, and kills all
/// occur). The predictive policy is the default so decisions carry model
/// estimates with cluster ids. `--users N` switches the synthetic trace to
/// the multi-tenant generator with that many accounts over `--banks`
/// banks, and `--priority multifactor` ranks the queue with the
/// Slurm-flavored factor composition (per-factor contributions land in
/// the audit log).
fn audit_run(cmd: &'static str, o: &Opts) -> Result<AuditRun, CliError> {
    let users = flag_or(cmd, o, "users", 0usize)?;
    let banks = flag_or(cmd, o, "banks", 48usize)?;
    let jobs = match o.get("trace") {
        Some(path) => load_trace(path)?,
        None => {
            let n = flag_or(cmd, o, "jobs", 400usize)?;
            let seed = flag_or(cmd, o, "seed", 42u64)?;
            if users > 0 {
                TraceConfig::multi_tenant(n, seed)
                    .with_users(users)
                    .with_banks(banks)
                    .generate()
            } else {
                TraceConfig::small(n, seed).generate()
            }
        }
    };
    let nodes = flag_or(cmd, o, "nodes", 64u32)?;
    let algo = parse_algo(cmd, o)?;
    let mut policy = parse_policy(cmd, o, "predictive")?;
    let rec = if o.get("obs").is_some() {
        Recorder::full()
    } else {
        Recorder::disabled()
    };
    let log = DecisionLog::unbounded();
    let cfg = BackfillConfig {
        algo,
        max_resubmits: flag_or(cmd, o, "resubmits", 3u32)?,
        obs: rec.clone(),
        audit: log.clone(),
        policies: parse_policies(cmd, o, banks)?,
        ..BackfillConfig::new(nodes)
    };
    let policy_name = policy.name();
    let report = run_schedule(&jobs, policy.as_mut(), &cfg);
    Ok(AuditRun {
        n_jobs: jobs.len(),
        nodes,
        algo,
        policy_name,
        log,
        report,
        rec,
    })
}

/// `eslurm why-job ID [--trace FILE] [--nodes N --algo A --policy P
/// --resubmits R --jobs J --seed S]`
///
/// Replays the (deterministic) scenario with the decision audit log on and
/// prints the complete decision timeline of one job: submission,
/// head-of-queue and reservation placements (with the counterfactual
/// blocker set), backfills and skips, starts, kills, resubmissions, and
/// completion — each line carrying the estimate (value + source + cluster)
/// the decision was based on.
pub fn why_job(args: &[String]) -> Result<(), CliError> {
    const CMD: &str = "why-job";
    let o = parse_opts(CMD, args)?;
    if o.wants_help() {
        print_help(CMD);
        return Ok(());
    }
    let id_str = o
        .positional(0, "job id")
        .map_err(|e| CliError::usage(CMD, e))?;
    let id: u64 = id_str
        .parse()
        .map_err(|_| CliError::usage(CMD, format!("job id `{id_str}` is not an integer")))?;
    let run = audit_run(CMD, &o)?;
    let records = run.log.records();
    if !records.iter().any(|r| r.job == id) {
        return Err(CliError::parse(
            CMD,
            format!(
                "job {id} made no decisions in this run ({} jobs audited)",
                run.n_jobs
            ),
        ));
    }
    println!(
        "audited {} jobs on {} nodes ({:?}, {} limits)\n",
        run.n_jobs, run.nodes, run.algo, run.policy_name
    );
    print!("{}", render_timeline(id, &records));
    Ok(())
}

/// `eslurm sched-report [--trace FILE] [--nodes N --algo A --policy P
/// --resubmits R --jobs J --seed S] [--audit FILE] [--obs FILE]`
///
/// Replays the (deterministic) scenario with the decision audit log on and
/// prints the aggregate decision story: backfill hit-rate, skip-reason
/// counts, kills/resubmissions, per-source and per-cluster estimator
/// accuracy (signed-error percentiles), and calibration buckets.
/// `--audit` exports the raw decision log as JSONL (byte-identical across
/// same-seed runs); `--obs` exports a Chrome trace whose pid 1 carries
/// per-job queued→run lanes next to the scheduler's flow arrows.
pub fn sched_report(args: &[String]) -> Result<(), CliError> {
    const CMD: &str = "sched-report";
    let o = parse_opts(CMD, args)?;
    if o.wants_help() {
        print_help(CMD);
        return Ok(());
    }
    let run = audit_run(CMD, &o)?;
    let records = run.log.records();
    println!(
        "audited {} jobs on {} nodes ({:?}, {} limits)",
        run.n_jobs, run.nodes, run.algo, run.policy_name
    );
    println!(
        "completed {} / killed {} / abandoned {}   avg wait {:.0}s   utilization {:.3}\n",
        run.report.completed,
        run.report.killed,
        run.report.abandoned,
        run.report.avg_wait().as_secs_f64(),
        run.report.utilization()
    );
    print!("{}", render_report(&AuditReport::from_records(&records)));
    if let Some(path) = o.get("audit") {
        std::fs::write(path, obs::audit::to_jsonl(&records))
            .map_err(|e| CliError::io(format!("writing {path}"), e))?;
        println!("audit:  {} decisions -> {path}", records.len());
    }
    if let Some(path) = o.get("obs") {
        let doc = obs::export::to_chrome_trace_with_flows_and_jobs(
            &run.rec.events(),
            &run.rec.causal_records(),
            &records,
        );
        std::fs::write(path, doc).map_err(|e| CliError::io(format!("writing {path}"), e))?;
        println!("trace:  job lanes + flows -> {path}");
    }
    Ok(())
}

/// `eslurm engine-report --nodes N --satellites M --minutes T --jobs J
/// --seed S [--faults K] [--shards P] [--csv FILE] [--trace FILE]`
///
/// Runs the same emulation as `simulate` with the wall-clock engine
/// profiler armed and prints the per-shard efficiency table: where each
/// shard's wall time went (event execution, queue ops, barrier waits,
/// mailbox drains), window efficiency (events per window, null-window
/// rate, realized lookahead vs. the `min_hop()` bound), cross-shard
/// message traffic, and the load-imbalance / sync-overhead summary.
///
/// The profiler observes only host monotonic clocks, so outcomes and all
/// virtual-time exports are bit-identical with it on or off. `--csv`
/// writes the report as `engine_wall_*` series (excluded from `diff`
/// gates by default); `--trace` writes a Chrome trace whose wall-clock
/// engine track (pid 2) sits beside the virtual-time node lanes — note
/// that full tracing forces the merged engine, so use `--trace` to study
/// serial behaviour and plain `--shards P` for the parallel engine.
pub fn engine_report(args: &[String]) -> Result<(), CliError> {
    const CMD: &str = "engine-report";
    let o = parse_opts(CMD, args)?;
    if o.wants_help() {
        print_help(CMD);
        return Ok(());
    }
    let nodes = flag_or(CMD, &o, "nodes", 256usize)?;
    let satellites = flag_or(CMD, &o, "satellites", 4usize)?;
    let minutes = flag_or(CMD, &o, "minutes", 10u64)?;
    let n_jobs = flag_or(CMD, &o, "jobs", 20u64)?;
    let seed = flag_or(CMD, &o, "seed", 42u64)?;
    let fault_events = flag_or(CMD, &o, "faults", 0usize)?;
    let shards = flag_or(CMD, &o, "shards", 4usize)?;

    // Recording an execution trace pins the engine to merged mode, so only
    // arm the recorder when the caller actually asked for a trace file.
    let rec = if o.get("trace").is_some() {
        Recorder::full()
    } else {
        Recorder::disabled()
    };
    let profiler = EngineProfiler::enabled();
    let sys = run_emulation(
        nodes,
        satellites,
        minutes,
        n_jobs,
        seed,
        fault_events,
        rec.clone(),
        Sampler::disabled(),
        shards,
        profiler.clone(),
        SloEngine::disabled(),
        MemProfiler::disabled(),
    );
    let report = profiler
        .report()
        .expect("enabled profiler is attached by SimCluster::new");
    print!("{}", report.render());
    println!(
        "jobs completed: {}/{n_jobs}; engine events: {}",
        sys.master().records.len(),
        sys.sim.events_processed()
    );
    if let Some(path) = o.get("csv") {
        let mut store = SeriesStore::new();
        report.to_series(&mut store, SimTime::ZERO + SimSpan::from_secs(minutes * 60));
        std::fs::write(path, store.to_csv())
            .map_err(|e| CliError::io(format!("writing {path}"), e))?;
        println!("csv:    {} series -> {path}", store.len());
    }
    if let Some(path) = o.get("trace") {
        let body = obs::export::to_chrome_trace_full(
            &rec.events(),
            &rec.causal_records(),
            &[],
            &profiler.spans(),
        );
        std::fs::write(path, body).map_err(|e| CliError::io(format!("writing {path}"), e))?;
        println!("trace:  virtual-time lanes + wall-clock engine track -> {path}");
    }
    Ok(())
}

/// `eslurm slo-report [--nodes N --satellites M --minutes T --jobs J
/// --seed S --faults K] [--sweep-p99 US] [--queue-wait-p90 S]
/// [--inbox-depth D] [--format table|csv|json] [--out FILE]
/// [--flight FILE] [--check true]`
///
/// Runs the reference emulation with the online SLO engine armed on a 1 s
/// evaluation cadence: sweep-completion p99, queue-wait p90, and master
/// inbox depth against the given targets (multi-window burn-rate
/// detection, so transient spikes don't breach but sustained ones do).
/// `--flight` arms the bounded flight ring with a 60 s dump cooldown —
/// each breach dumps a reason-tagged forensic snapshot there. `--check`
/// exits 4 when any spec recorded a breach, mirroring `diff`'s exit 3.
pub fn slo_report(args: &[String]) -> Result<(), CliError> {
    const CMD: &str = "slo-report";
    let o = parse_opts(CMD, args)?;
    if o.wants_help() {
        print_help(CMD);
        return Ok(());
    }
    let nodes = flag_or(CMD, &o, "nodes", 128usize)?;
    let satellites = flag_or(CMD, &o, "satellites", 2usize)?;
    let minutes = flag_or(CMD, &o, "minutes", 10u64)?;
    let n_jobs = flag_or(CMD, &o, "jobs", 20u64)?;
    let seed = flag_or(CMD, &o, "seed", 42u64)?;
    let fault_events = flag_or(CMD, &o, "faults", 0usize)?;
    let sweep_p99_us = flag_or(CMD, &o, "sweep-p99", 10_000_000f64)?;
    let queue_wait_p90_s = flag_or(CMD, &o, "queue-wait-p90", 600f64)?;
    let inbox_depth = flag_or(CMD, &o, "inbox-depth", 10_000f64)?;
    let format = o.get("format").unwrap_or("table");
    let check = flag_or(CMD, &o, "check", false)?;

    let rec = match o.get("flight") {
        Some(path) => Recorder::with_flight(
            FlightConfig::dumping_to(path).with_cooldown(SimSpan::from_secs(60)),
        ),
        None => Recorder::metrics_only(),
    };
    let horizon = SimTime::ZERO + SimSpan::from_secs(minutes * 60);
    let sampler = Sampler::every_until(SimSpan::from_secs(1), horizon);
    let slo = SloEngine::paper_presets(sweep_p99_us, queue_wait_p90_s, inbox_depth);
    let sys = run_emulation(
        nodes,
        satellites,
        minutes,
        n_jobs,
        seed,
        fault_events,
        rec.clone(),
        sampler,
        1,
        EngineProfiler::disabled(),
        slo,
        MemProfiler::disabled(),
    );
    let report = sys
        .sim
        .slo_engine()
        .report()
        .expect("engine armed above is enabled");
    let body = match format {
        "table" => report.render(),
        "csv" => report.to_csv(),
        "json" => report.to_json(),
        other => {
            return Err(CliError::usage(
                CMD,
                format!("unknown --format {other} (table | csv | json)"),
            ))
        }
    };
    match o.get("out") {
        Some(path) => {
            std::fs::write(path, &body).map_err(|e| CliError::io(format!("writing {path}"), e))?;
            println!("slo report ({format}) -> {path}");
        }
        None => print!("{body}"),
    }
    println!(
        "jobs completed: {}/{n_jobs}; engine events: {}",
        sys.master().records.len(),
        sys.sim.events_processed()
    );
    let unmet = report.unmet();
    if check && unmet > 0 {
        return Err(CliError::SloUnmet { count: unmet });
    }
    Ok(())
}

/// `eslurm mem-report [--nodes N --satellites M --minutes T --jobs J
/// --seed S --faults K --shards P] [--format table|csv|json] [--out FILE]
/// [--csv FILE]`
///
/// Runs the same emulation as `simulate` with the tagged tracking
/// allocator armed and prints the per-subsystem host-heap attribution:
/// live and peak bytes, allocation counts and rates, and the size-class
/// histogram for each tag (`master`, `satellite`, `sched`, `ml`, `obs`,
/// `des-shard{n}`, `untagged`). Host-memory measurements live in their
/// own domain (DESIGN §15): outcomes and all virtual-time exports are
/// bit-identical with the profiler on or off, and the `mem_host_*` series
/// written by `--csv` never reach the default `diff` gates. Requires a
/// binary built with `--features mem-profile`; without it the command
/// explains and exits 0.
pub fn mem_report(args: &[String]) -> Result<(), CliError> {
    const CMD: &str = "mem-report";
    let o = parse_opts(CMD, args)?;
    if o.wants_help() {
        print_help(CMD);
        return Ok(());
    }
    let nodes = flag_or(CMD, &o, "nodes", 128usize)?;
    let satellites = flag_or(CMD, &o, "satellites", 2usize)?;
    let minutes = flag_or(CMD, &o, "minutes", 5u64)?;
    let n_jobs = flag_or(CMD, &o, "jobs", 10u64)?;
    let seed = flag_or(CMD, &o, "seed", 42u64)?;
    let fault_events = flag_or(CMD, &o, "faults", 0usize)?;
    let shards = flag_or(CMD, &o, "shards", 1usize)?;
    let format = o.get("format").unwrap_or("table");

    if !mem_profile_compiled() {
        println!(
            "mem-report: this binary was built without the `mem-profile` \
             feature, so the tracking allocator is compiled out.\n\
             rebuild with `cargo build --features mem-profile` to measure \
             the host heap."
        );
        return Ok(());
    }
    let horizon = SimTime::ZERO + SimSpan::from_secs(minutes * 60);
    // The sampler drives the sampling tick that feeds `mem_host_*` series;
    // arm it on the 1 Hz cadence whether or not `--csv` exports them.
    let sampler = Sampler::every_until(SimSpan::from_secs(1), horizon);
    let profiler = MemProfiler::enabled();
    let sys = run_emulation(
        nodes,
        satellites,
        minutes,
        n_jobs,
        seed,
        fault_events,
        Recorder::disabled(),
        sampler.clone(),
        shards,
        EngineProfiler::disabled(),
        SloEngine::disabled(),
        profiler.clone(),
    );
    let report = profiler
        .report()
        .expect("mem_profile_compiled() checked above, so the handle is armed");
    let body = match format {
        "table" => report.render(),
        "csv" => report.to_csv(),
        "json" => report.to_json(),
        other => {
            return Err(CliError::usage(
                CMD,
                format!("unknown --format {other} (table | csv | json)"),
            ))
        }
    };
    match o.get("out") {
        Some(path) => {
            std::fs::write(path, &body).map_err(|e| CliError::io(format!("writing {path}"), e))?;
            println!("mem report ({format}) -> {path}");
        }
        None => print!("{body}"),
    }
    println!(
        "jobs completed: {}/{n_jobs}; engine events: {}",
        sys.master().records.len(),
        sys.sim.events_processed()
    );
    if let Some(path) = o.get("csv") {
        std::fs::write(path, sampler.host_csv())
            .map_err(|e| CliError::io(format!("writing {path}"), e))?;
        println!("csv:    mem_host_* series -> {path}");
    }
    Ok(())
}

/// `eslurm diff BASE.csv NEW.csv [--threshold-pct P]
/// [--thresholds metric=P,metric=P] [--all true]
/// [--include-domain wallclock,host-mem]`
///
/// Compares two sampler CSVs and exits 3 when any gated metric's mean or
/// max grew past its threshold. `footprint_*` metrics are gated by
/// default; `--thresholds` gates the listed metrics with their own
/// limits, and `--all true` gates every shared metric. Metrics from the
/// non-virtual measurement domains — wall-clock `engine_wall_*` and
/// host-memory `mem_host_*` series — are never gated unless
/// `--include-domain` (or an explicit `--thresholds` entry) opts their
/// domain in: host timing and allocator jitter must not fail a
/// virtual-time determinism gate. `--include-wallclock true` is kept as
/// an alias for `--include-domain wallclock`.
pub fn diff(args: &[String]) -> Result<(), CliError> {
    const CMD: &str = "diff";
    let o = parse_opts(CMD, args)?;
    if o.wants_help() {
        print_help(CMD);
        return Ok(());
    }
    let base_path = o
        .positional(0, "baseline csv")
        .map_err(|e| CliError::usage(CMD, e))?;
    let new_path = o
        .positional(1, "candidate csv")
        .map_err(|e| CliError::usage(CMD, e))?;
    let mut opts = DiffOptions {
        default_threshold_pct: flag_or(CMD, &o, "threshold-pct", 5.0f64)?,
        gate_all: flag_or(CMD, &o, "all", false)?,
        include_wallclock: flag_or(CMD, &o, "include-wallclock", false)?,
        ..DiffOptions::default()
    };
    if let Some(list) = o.get("include-domain") {
        for domain in list.split(',').filter(|p| !p.is_empty()) {
            match domain {
                "wallclock" => opts.include_wallclock = true,
                "host-mem" => opts.include_hostmem = true,
                other => {
                    return Err(CliError::usage(
                        CMD,
                        format!("unknown --include-domain {other} (wallclock | host-mem)"),
                    ))
                }
            }
        }
    }
    if let Some(list) = o.get("thresholds") {
        for part in list.split(',').filter(|p| !p.is_empty()) {
            // Split at the LAST `=`: rendered metric names may carry label
            // sets with their own `=` (`footprint_sockets{node="master"}`).
            let (metric, pct) = part.rsplit_once('=').ok_or_else(|| {
                CliError::usage(
                    CMD,
                    format!("--thresholds entry `{part}` is not metric=pct"),
                )
            })?;
            let pct: f64 = pct
                .parse()
                .map_err(|e| CliError::usage(CMD, format!("--thresholds {metric}: {e}")))?;
            opts.per_metric.insert(metric.to_string(), pct);
        }
    }

    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|e| CliError::io(format!("reading {path}"), e))
    };
    let report = compare_csv(&read(base_path)?, &read(new_path)?, &opts)
        .map_err(|e| CliError::parse(format!("{base_path} vs {new_path}"), e))?;

    println!(
        "{:<44} {:>9} {:>5} {:>14} {:>14} {:>9}  gate",
        "metric", "domain", "stat", "base", "new", "delta%"
    );
    for d in &report.deltas {
        // Gate verdicts name the metric's measurement domain so a failure
        // line says which clock it was judged in (virtual determinism vs.
        // opted-in wallclock/host noise).
        let gate = match (d.regressed, d.threshold_pct) {
            (true, Some(t)) => format!("FAIL >{t}% ({} domain)", d.domain),
            (false, Some(t)) => format!("ok <={t}%"),
            (_, None) => "-".to_string(),
        };
        println!(
            "{:<44} {:>9} {:>5} {:>14.4} {:>14.4} {:>9.2}  {gate}",
            d.metric, d.domain, d.stat, d.base, d.new, d.pct
        );
    }
    for m in &report.only_in_base {
        println!("only in baseline:  {m}");
    }
    for m in &report.only_in_new {
        println!("only in candidate: {m}");
    }
    let count = report.regressions().len();
    if count > 0 {
        return Err(CliError::Regression { count });
    }
    println!("no regressions");
    Ok(())
}

/// `eslurm convert IN OUT`
pub fn convert(args: &[String]) -> Result<(), CliError> {
    const CMD: &str = "convert";
    let o = parse_opts(CMD, args)?;
    if o.wants_help() {
        print_help(CMD);
        return Ok(());
    }
    let input = o
        .positional(0, "input file")
        .map_err(|e| CliError::usage(CMD, e))?;
    let output = o
        .positional(1, "output file")
        .map_err(|e| CliError::usage(CMD, e))?;
    let jobs = load_trace(input)?;
    save_trace(&jobs, output)?;
    println!("converted {} jobs: {input} -> {output}", jobs.len());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The drift guard: every command registered in COMMANDS must both
    /// dispatch to an implementation and appear in the usage text, so a
    /// new subcommand cannot be silently absent from `eslurm --help` (or
    /// listed in help without actually routing anywhere).
    #[test]
    fn every_registered_command_dispatches_and_is_listed() {
        let help = vec!["--help".to_string()];
        let usage_text = usage();
        for c in COMMANDS {
            assert!(
                dispatch(c.name, &help).is_some(),
                "`{}` is in COMMANDS but dispatch() does not route it",
                c.name
            );
            assert!(
                usage_text.contains(c.name),
                "`{}` missing from usage text",
                c.name
            );
            assert!(
                usage_text.contains(c.summary),
                "`{}` summary missing from usage text",
                c.name
            );
        }
        assert!(dispatch("no-such-command", &help).is_none());
        assert!(usage_text.contains("help"));
    }

    /// The generated help carries the one exit-code table, and every code
    /// it documents is the code [`CliError::exit_code`] actually returns —
    /// so the docs cannot drift from the behaviour.
    #[test]
    fn usage_documents_every_exit_code() {
        let text = usage();
        assert!(text.contains("EXIT CODES:"), "help is missing the table");
        for line in [
            "0  success",
            "1  runtime failure (I/O, malformed input)",
            "2  command-line usage error",
            "3  footprint-regression gate tripped (`diff`)",
            "4  SLO gate tripped (`slo-report --check`)",
        ] {
            assert!(text.contains(line), "help is missing `{line}`");
        }
        assert_eq!(CliError::usage("x", "y").exit_code(), 2);
        assert_eq!(CliError::Regression { count: 1 }.exit_code(), 3);
        assert_eq!(CliError::SloUnmet { count: 1 }.exit_code(), 4);
        assert_eq!(CliError::parse("f", "bad").exit_code(), 1);
    }

    /// Spec names are unique — duplicate registration would shadow one
    /// command's flags with another's.
    #[test]
    fn command_names_are_unique() {
        let mut names: Vec<&str> = COMMANDS.iter().map(|c| c.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate command name in COMMANDS");
    }
}
