//! The CLI subcommands.

use crate::opts::Opts;
use eslurm::{EslurmConfig, EslurmSystemBuilder, PredictiveLimit};
use estimate::{
    evaluate, forest_baseline, svm_baseline, EslurmPredictor, EstimatorConfig, Irpa, Last2, Prep,
    RuntimePredictor, Trip, UserEstimate,
};
use sched::{
    simulate as run_schedule, BackfillConfig, LimitPolicy, OracleLimit, SchedAlgo, UserLimit,
};
use simclock::{SimSpan, SimTime};
use std::path::Path;
use workload::{stats, swf, trace, Job, TraceConfig};

fn help(name: &str, summary: &str, o: &Opts) -> Result<(), String> {
    println!("eslurm {name} — {summary}\noptions:");
    for k in o.known() {
        println!("    --{k} <value>");
    }
    Ok(())
}

fn load_trace(path: &str) -> Result<Vec<Job>, String> {
    let p = Path::new(path);
    let jobs = if path.ends_with(".swf") {
        swf::load_swf(p, &swf::SwfImportOptions::default())
    } else {
        trace::load_jsonl(p)
    }
    .map_err(|e| format!("loading {path}: {e}"))?;
    if jobs.is_empty() {
        return Err(format!("{path}: trace is empty"));
    }
    Ok(jobs)
}

fn save_trace(jobs: &[Job], path: &str) -> Result<(), String> {
    let p = Path::new(path);
    if path.ends_with(".swf") {
        swf::save_swf(jobs, p)
    } else {
        trace::save_jsonl(jobs, p)
    }
    .map_err(|e| format!("writing {path}: {e}"))
}

/// `eslurm gen-trace --jobs N --system tianhe2a|ng --seed S --out FILE`
pub fn gen_trace(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args, &["jobs", "system", "seed", "out"])?;
    if o.wants_help() {
        return help("gen-trace", "generate a synthetic workload trace", &o);
    }
    let system = o.get("system").unwrap_or("tianhe2a");
    let seed = o.get_or("seed", 42u64)?;
    let mut cfg = match system {
        "tianhe2a" => TraceConfig::tianhe2a(),
        "ng" | "ng-tianhe" => TraceConfig::ng_tianhe(),
        other => return Err(format!("unknown --system {other} (tianhe2a | ng)")),
    }
    .with_seed(seed);
    let jobs = o.get_or("jobs", 0usize)?;
    if jobs > 0 {
        cfg = cfg.shrunk_to(jobs);
    }
    let out = o.get("out").unwrap_or("trace.jsonl");
    let generated = cfg.generate();
    save_trace(&generated, out)?;
    let s = stats::summarize(&generated);
    println!(
        "wrote {} jobs ({} users, {} job names) to {out}",
        s.jobs, s.users, s.names
    );
    Ok(())
}

/// `eslurm analyze FILE`
pub fn analyze(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args, &["samples", "seed"])?;
    if o.wants_help() {
        return help("analyze", "workload statistics for a trace", &o);
    }
    let jobs = load_trace(o.positional(0, "trace file")?)?;
    let samples = o.get_or("samples", 20_000usize)?;
    let seed = o.get_or("seed", 1u64)?;

    let s = stats::summarize(&jobs);
    println!("jobs: {}   users: {}   names: {}", s.jobs, s.users, s.names);
    println!(
        "mean runtime: {:.0}s   mean nodes: {:.1}",
        s.mean_runtime_s, s.mean_nodes
    );
    println!(
        "user estimates: {:.1}% overestimated (P > 1)",
        100.0 * s.frac_overestimated
    );
    println!(
        "24h same-job resubmission: per-user {:.3} / per-job {:.3}",
        stats::resubmit_within_24h_prob(&jobs),
        stats::resubmit_within_24h_prob_job_weighted(&jobs)
    );
    println!(
        ">6h jobs submitted 18:00-24:00: {:.1}%",
        100.0 * stats::frac_long_jobs_in_evening(&jobs)
    );
    println!("\ncorrelation vs submission interval (hours):");
    for (h, r) in
        stats::correlation_vs_interval(&jobs, &[0.0, 1.0, 10.0, 30.0, 100.0], samples, seed)
    {
        println!("    {h:6.1}h  {r:.3}");
    }
    println!("correlation vs job-ID gap:");
    for (g, r) in stats::correlation_vs_id_gap(&jobs, &[1, 10, 100, 700, 2000], samples, seed) {
        println!("    {g:6}    {r:.3}");
    }
    println!("\njob-size histogram (nodes <= bucket):");
    for (bound, count) in stats::size_histogram(&jobs) {
        if count > 0 {
            println!("    {bound:6}  {count}");
        }
    }
    Ok(())
}

/// `eslurm replay FILE --nodes N --policy user|predictive|oracle --algo ...`
pub fn replay(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args, &["nodes", "policy", "algo", "resubmits"])?;
    if o.wants_help() {
        return help(
            "replay",
            "replay a trace through the backfill scheduler",
            &o,
        );
    }
    let jobs = load_trace(o.positional(0, "trace file")?)?;
    let nodes = o.get_or("nodes", 1024u32)?;
    let algo = match o.get("algo").unwrap_or("easy") {
        "easy" => SchedAlgo::Easy,
        "fcfs" => SchedAlgo::Fcfs,
        "conservative" => SchedAlgo::Conservative,
        other => {
            return Err(format!(
                "unknown --algo {other} (easy | fcfs | conservative)"
            ))
        }
    };
    let mut policy: Box<dyn LimitPolicy> = match o.get("policy").unwrap_or("user") {
        "user" => Box::new(UserLimit::default()),
        "predictive" => Box::new(PredictiveLimit::new(EstimatorConfig::default())),
        "oracle" => Box::new(OracleLimit),
        other => {
            return Err(format!(
                "unknown --policy {other} (user | predictive | oracle)"
            ))
        }
    };
    let cfg = BackfillConfig {
        algo,
        max_resubmits: o.get_or("resubmits", 3u32)?,
        ..BackfillConfig::new(nodes)
    };
    println!(
        "replaying {} jobs on {nodes} nodes ({:?}, {} limits) ...",
        jobs.len(),
        algo,
        policy.name()
    );
    let r = run_schedule(&jobs, policy.as_mut(), &cfg);
    println!("completed:        {}", r.completed);
    println!("killed at limit:  {} ({} abandoned)", r.killed, r.abandoned);
    println!(
        "utilization:      {:.3} (useful {:.3})",
        r.utilization(),
        r.useful_utilization()
    );
    println!("avg wait:         {:.0}s", r.avg_wait().as_secs_f64());
    println!("avg slowdown:     {:.2}", r.avg_slowdown());
    println!(
        "makespan:         {:.1}h",
        r.makespan.as_secs_f64() / 3600.0
    );
    Ok(())
}

/// `eslurm predict FILE [--warmup N] [--window N]`
pub fn predict(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args, &["warmup", "window", "seed"])?;
    if o.wants_help() {
        return help("predict", "compare runtime-prediction models", &o);
    }
    let jobs = load_trace(o.positional(0, "trace file")?)?;
    let warmup = o.get_or("warmup", jobs.len() / 10)?;
    let window = o.get_or("window", 2000usize)?;
    let seed = o.get_or("seed", 7u64)?;
    let mut models: Vec<Box<dyn RuntimePredictor>> = vec![
        Box::new(UserEstimate),
        Box::new(Last2::default()),
        Box::new(svm_baseline(window.min(700))),
        Box::new(forest_baseline(window.min(700), seed)),
        Box::new(Irpa::new(window.min(700), seed + 1)),
        Box::new(Trip::new(window.min(700))),
        Box::new(Prep::new(window.min(700), seed + 2)),
        Box::new(EslurmPredictor::new(EstimatorConfig {
            window,
            ..Default::default()
        })),
    ];
    println!(
        "{:14} {:>9} {:>14} {:>9}",
        "model", "accuracy", "underestimate", "coverage"
    );
    for m in &mut models {
        let r = evaluate(&jobs, m.as_mut(), warmup);
        println!(
            "{:14} {:>9.3} {:>14.3} {:>9.2}",
            r.name, r.aea, r.underestimate_rate, r.coverage
        );
    }
    Ok(())
}

/// `eslurm simulate --nodes N --satellites M --minutes T --jobs J`
pub fn simulate(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args, &["nodes", "satellites", "minutes", "jobs", "seed"])?;
    if o.wants_help() {
        return help("simulate", "run an emulated ESlurm cluster", &o);
    }
    let nodes = o.get_or("nodes", 256usize)?;
    let satellites = o.get_or("satellites", 2usize)?;
    let minutes = o.get_or("minutes", 10u64)?;
    let n_jobs = o.get_or("jobs", 20u64)?;
    let seed = o.get_or("seed", 42u64)?;

    let cfg = EslurmConfig {
        n_satellites: satellites,
        eq1_width: (nodes / satellites.max(1)).max(32),
        relay_width: 32,
        ..Default::default()
    };
    let mut sys = EslurmSystemBuilder::new(cfg, nodes, seed).build();
    let horizon = SimTime::ZERO + SimSpan::from_secs(minutes * 60);
    for j in 0..n_jobs {
        let size = ((j % 5 + 1) as usize * nodes / 8).max(1).min(nodes);
        let start = (j as usize * 13) % (nodes - size + 1);
        sys.submit(
            SimTime::from_secs(5 + j * 7),
            j,
            &(start..start + size).collect::<Vec<_>>(),
            SimSpan::from_secs(60),
        );
    }
    sys.sim.run_until(horizon);

    let master = sys.master();
    println!(
        "emulated {nodes} compute nodes + {satellites} satellites for {minutes} virtual minutes"
    );
    println!("jobs completed:    {}/{n_jobs}", master.records.len());
    if let Some(r) = master.records.first() {
        println!("first occupation:  {:.3}s", r.occupation().as_secs_f64());
    }
    println!("heartbeat sweeps:  {}", master.sweeps.len());
    println!(
        "reassignments:     {}   takeovers: {}",
        master.reassignments, master.takeovers
    );
    let m = sys.sim.meter(emu::NodeId::MASTER);
    println!(
        "master meters:     cpu {:.1}s  virt {:.2} GiB  real {:.1} MiB  peak sockets {}",
        m.cpu_time().as_secs_f64(),
        m.virt_mem() as f64 / (1u64 << 30) as f64,
        m.real_mem() as f64 / (1u64 << 20) as f64,
        m.peak_sockets()
    );
    println!("events processed:  {}", sys.sim.events_processed());
    Ok(())
}

/// `eslurm convert IN OUT`
pub fn convert(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args, &["cores-per-node"])?;
    if o.wants_help() {
        return help("convert", "convert between .jsonl and .swf traces", &o);
    }
    let input = o.positional(0, "input file")?;
    let output = o.positional(1, "output file")?;
    let jobs = load_trace(input)?;
    save_trace(&jobs, output)?;
    println!("converted {} jobs: {input} -> {output}", jobs.len());
    Ok(())
}
