//! End-to-end integration: a full ESlurm deployment (master, satellites,
//! and compute nodes) on the discrete-event emulator, with a live
//! workload, ground-truth failures, and a monitoring-fed FP-Tree
//! constructor.

use eslurm_suite::emu::{FaultPlan, NodeId, Outage};
use eslurm_suite::eslurm::{EslurmConfig, EslurmSystemBuilder, SatState};
use eslurm_suite::monitoring::OraclePredictor;
use eslurm_suite::simclock::{SimSpan, SimTime};
use std::sync::{Arc, Mutex};

fn cfg(m: usize) -> EslurmConfig {
    EslurmConfig {
        n_satellites: m,
        eq1_width: 64,
        relay_width: 8,
        hb_sweep_interval: SimSpan::from_secs(60),
        sat_hb_interval: SimSpan::from_secs(5),
        ..Default::default()
    }
}

#[test]
fn workload_completes_with_failures_and_prediction() {
    let n_slaves = 300;
    let m = 3;
    let total = 1 + m + n_slaves;
    // Ten compute nodes fail mid-run and come back later.
    let outages: Vec<Outage> = (0..10)
        .map(|i| Outage {
            node: NodeId((1 + m + 20 + i * 7) as u32),
            down_at: SimTime::from_secs(100 + i as u64 * 5),
            up_at: SimTime::from_secs(2000),
        })
        .collect();
    let plan = FaultPlan::from_outages(total, outages);
    let predictor = OraclePredictor::new(plan.clone(), SimSpan::from_secs(120), 3);
    let mut sys = EslurmSystemBuilder::new(cfg(m), n_slaves, 21)
        .faults(plan)
        .predictor(Arc::new(Mutex::new(predictor)))
        .build();

    // Submit 40 jobs over the first ten minutes, avoiding the failed range
    // only sometimes — the RM must cope either way.
    for j in 0..40u64 {
        let start = (j as usize * 7) % (n_slaves - 64);
        let idxs: Vec<usize> = (start..start + 32).collect();
        sys.submit(
            SimTime::from_secs(10 + j * 15),
            j,
            &idxs,
            SimSpan::from_secs(30 + (j % 5) * 10),
        );
    }
    sys.sim.run_until(SimTime::from_secs(1800));

    let master = sys.master();
    // Every job's lifecycle finished (launch → run → terminate) even
    // though some of its nodes were down (partial acks + timeouts).
    assert_eq!(master.records.len(), 40, "jobs lost");
    for r in &master.records {
        let occ = r.occupation().as_secs_f64();
        assert!(occ < 120.0, "job {} occupation {occ}s", r.job);
    }
    // Sweeps ran and reported most nodes alive.
    assert!(!master.sweeps.is_empty());
    let last = master.sweeps.last().unwrap();
    assert!(
        last.reached >= (n_slaves - 12) as u32,
        "last sweep reached only {} of {}",
        last.reached,
        n_slaves
    );

    // All satellites stayed healthy (RUNNING, or BUSY with an in-flight
    // sweep at the instant we stopped the clock).
    for i in 0..m {
        let st = master.satellite_state(i, sys.sim.now());
        assert!(
            matches!(st, SatState::Running | SatState::Busy),
            "satellite {i} ended in {st:?}"
        );
    }

    // FP-Trees were built and placed suspects on leaves.
    let mut seen = 0;
    let mut on_leaves = 0;
    for i in 0..m {
        seen += sys.satellite(i).fp_stats.suspects_seen;
        on_leaves += sys.satellite(i).fp_stats.suspects_on_leaves;
    }
    assert!(seen > 0, "predictor never fed the FP-Tree constructor");
    assert!(
        on_leaves as f64 >= 0.8 * seen as f64,
        "placement ratio {on_leaves}/{seen} below the paper's 81.7%"
    );
}

#[test]
fn satellite_crash_recovers_and_fsm_tracks_it() {
    let n_slaves = 120;
    let m = 2;
    let total = 1 + m + n_slaves;
    // Satellite 1 (node id 1) dies at t=30s and recovers at t=300s.
    let plan = FaultPlan::from_outages(
        total,
        vec![Outage {
            node: NodeId(1),
            down_at: SimTime::from_secs(30),
            up_at: SimTime::from_secs(300),
        }],
    );
    let mut sys = EslurmSystemBuilder::new(cfg(m), n_slaves, 5)
        .faults(plan)
        .build();
    for j in 0..20u64 {
        sys.submit(
            SimTime::from_secs(35 + j * 10),
            j,
            &(0..80).collect::<Vec<_>>(),
            SimSpan::from_secs(20),
        );
    }
    sys.sim.run_until(SimTime::from_secs(250));
    {
        let master = sys.master();
        assert_eq!(master.records.len(), 20, "jobs lost to the satellite crash");
        assert!(
            master.reassignments + master.takeovers > 0,
            "satellite failure never handled"
        );
        // While down, the FSM shows FAULT (not yet 20 min → not DOWN).
        let st = master.satellite_state(0, sys.sim.now());
        assert!(
            matches!(st, SatState::Fault | SatState::Down),
            "state {st:?}"
        );
    }
    // After recovery, heartbeats bring it back to RUNNING.
    sys.sim.run_until(SimTime::from_secs(400));
    assert_eq!(
        sys.master().satellite_state(0, sys.sim.now()),
        SatState::Running,
        "satellite did not rejoin the pool"
    );
}

#[test]
fn identical_seeds_identical_outcomes() {
    let run = |seed: u64| {
        let mut sys = EslurmSystemBuilder::new(cfg(2), 100, seed).build();
        for j in 0..10u64 {
            sys.submit(
                SimTime::from_secs(5 + j),
                j,
                &(0..50).collect::<Vec<_>>(),
                SimSpan::from_secs(15),
            );
        }
        sys.sim.run_until(SimTime::from_secs(600));
        let m = sys.master();
        let occs: Vec<u64> = m
            .records
            .iter()
            .map(|r| r.occupation().as_micros())
            .collect();
        (sys.sim.events_processed(), occs, m.sweeps.len())
    };
    assert_eq!(run(9), run(9));
    // A different seed shifts latency jitter, so occupations differ.
    assert_ne!(run(9).1, run(10).1);
}
