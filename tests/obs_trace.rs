//! Observability integration: a small faulted DES run must leave a
//! coherent trace — fault markers where the outage schedule says, task
//! retries when a satellite dies holding a dispatch, virtual-time
//! monotone instants, and bitwise-identical traces for identical seeds.

use eslurm_suite::eslurm::prelude::*;

/// A 32-node deployment whose only satellite (node 1) is down during the
/// first job's dispatch window, forcing BT-failure retries.
fn faulted_run(seed: u64) -> (Recorder, usize) {
    let cfg = EslurmConfig {
        n_satellites: 1,
        eq1_width: 32,
        relay_width: 8,
        ..Default::default()
    };
    let rec = Recorder::full();
    let plan = FaultPlan::from_outages(
        1 + 1 + 32,
        vec![Outage {
            node: NodeId(1),
            down_at: SimTime::from_secs(4),
            up_at: SimTime::from_secs(60),
        }],
    );
    let mut sys = EslurmSystemBuilder::new(cfg, 32, seed)
        .obs(rec.clone())
        .faults(plan)
        .build();
    sys.submit(
        SimTime::from_secs(5),
        1,
        &(0..16).collect::<Vec<_>>(),
        SimSpan::from_secs(10),
    );
    sys.submit(
        SimTime::from_secs(70),
        2,
        &(16..32).collect::<Vec<_>>(),
        SimSpan::from_secs(10),
    );
    sys.sim.run_until(SimTime::from_secs(180));
    (rec, sys.master().records.len())
}

#[test]
fn faulted_run_emits_fault_and_retry_events() {
    let (rec, completed) = faulted_run(11);
    assert_eq!(completed, 2, "both jobs should finish despite the outage");

    let events = rec.events();
    let count = |k: EventKind| events.iter().filter(|e| e.kind == k).count();

    // The outage schedule has exactly one down/up pair on node 1.
    assert_eq!(count(EventKind::NodeDown), 1);
    assert_eq!(count(EventKind::NodeUp), 1);
    let down = events
        .iter()
        .find(|e| e.kind == EventKind::NodeDown)
        .unwrap();
    assert_eq!(down.node, 1);
    assert_eq!(down.ts_us, SimTime::from_secs(4).as_micros());

    // The dead satellite never reports: the master must retry the task.
    assert!(
        rec.counter(Counter::TaskRetries) >= 1,
        "no task retries recorded: {}",
        rec.summary()
    );
    assert!(count(EventKind::TaskRetry) >= 1);
    let retry = events
        .iter()
        .find(|e| e.kind == EventKind::TaskRetry)
        .unwrap();
    assert_eq!(retry.a, 1, "retry should name the stranded job");
    assert!(retry.b >= 1, "retry records the attempt number");

    // Transport spans made it in, and counters agree with the trace.
    assert_eq!(
        count(EventKind::MsgSend) as u64,
        rec.counter(Counter::MsgsSent)
    );
    assert_eq!(
        count(EventKind::NodeDown) as u64,
        rec.counter(Counter::NodeDowns)
    );
}

#[test]
fn instant_events_are_monotone_in_virtual_time() {
    let (rec, _) = faulted_run(11);
    // Instants are stamped at the moment they are recorded, and the DES
    // processes events in virtual-time order — so in recording order the
    // instant timestamps never go backwards. (Spans may start earlier:
    // e.g. a job-completion span opens at submission time.)
    let instants: Vec<u64> = rec
        .events()
        .iter()
        .filter(|e| e.dur_us == 0)
        .map(|e| e.ts_us)
        .collect();
    assert!(instants.len() > 100, "expected a busy trace");
    assert!(
        instants.windows(2).all(|w| w[0] <= w[1]),
        "instant timestamps regressed"
    );
}

#[test]
fn same_seed_runs_record_identical_traces() {
    let (a, _) = faulted_run(42);
    let (b, _) = faulted_run(42);
    let (ea, eb) = (a.events(), b.events());
    assert_eq!(ea.len(), eb.len());
    assert_eq!(ea, eb, "same-seed traces must be bitwise identical");
    assert_eq!(a.counter(Counter::MsgsSent), b.counter(Counter::MsgsSent));

    let (c, _) = faulted_run(43);
    assert_ne!(ea, c.events(), "different seeds should visibly differ");
}

#[test]
fn chrome_export_of_a_real_run_parses() {
    let (rec, _) = faulted_run(7);
    let json = obs::export::to_chrome_trace(&rec.events());
    let v: serde::Value = serde_json::from_str(&json).expect("chrome trace is valid JSON");
    let events = match v.get("traceEvents") {
        Some(serde::Value::Array(a)) => a,
        other => panic!("traceEvents missing or not an array: {other:?}"),
    };
    assert_eq!(events.len(), rec.events().len());
    // Chrome requires ph/ts/pid/tid/name on every record; exporter sorts
    // by timestamp so Perfetto ingests without complaints.
    let mut last_ts = 0.0f64;
    for e in events {
        for key in ["name", "ph", "ts", "pid", "tid"] {
            assert!(e.get(key).is_some(), "event missing {key}: {e:?}");
        }
        let ts = match e.get("ts") {
            Some(serde::Value::Number(n)) => n.as_f64(),
            other => panic!("ts not a number: {other:?}"),
        };
        assert!(ts >= last_ts, "exporter output not sorted by ts");
        last_ts = ts;
    }
}
