//! Pipeline integration: trace generation → runtime-estimation framework
//! → backfill scheduling, plus trace persistence round-tripping through
//! the whole chain.

use eslurm_suite::eslurm::PredictiveLimit;
use eslurm_suite::estimate::{evaluate, EslurmPredictor, EstimatorConfig, Last2, UserEstimate};
use eslurm_suite::sched::prelude::{simulate, BackfillConfig, UserLimit};
use eslurm_suite::workload::{trace, TraceConfig};

#[test]
fn model_ranking_matches_paper_ordering() {
    let jobs = TraceConfig::small(4000, 41).generate();
    let warmup = 400;
    let user = evaluate(&jobs, &mut UserEstimate, warmup);
    let last2 = evaluate(&jobs, &mut Last2::default(), warmup);
    let eslurm = evaluate(
        &jobs,
        &mut EslurmPredictor::new(EstimatorConfig::default()),
        warmup,
    );
    // Fig. 11b ordering: ESlurm > Last-2 > User on accuracy.
    assert!(
        eslurm.aea > last2.aea && last2.aea > user.aea,
        "ordering broken: eslurm {:.3}, last2 {:.3}, user {:.3}",
        eslurm.aea,
        last2.aea,
        user.aea
    );
    // The paper's headline: ~0.84 accuracy for the framework.
    assert!(eslurm.aea > 0.70, "framework accuracy {:.3}", eslurm.aea);
    // And a far lower underestimation rate than naive models.
    assert!(eslurm.underestimate_rate < last2.underestimate_rate);
}

#[test]
fn predictive_scheduling_reduces_kills_without_losing_jobs() {
    let mut cfg = TraceConfig::small(2500, 43);
    cfg.no_estimate_prob = 0.3;
    let jobs = cfg.generate();
    let sched_cfg = BackfillConfig::new(256);

    let user = simulate(&jobs, &mut UserLimit::default(), &sched_cfg);
    let mut policy = PredictiveLimit::new(EstimatorConfig::default());
    let predictive = simulate(&jobs, &mut policy, &sched_cfg);

    assert_eq!(user.completed + user.abandoned, jobs.len());
    assert_eq!(predictive.completed + predictive.abandoned, jobs.len());
    assert!(
        predictive.killed < user.killed,
        "predictive kills {} not below user kills {}",
        predictive.killed,
        user.killed
    );
    assert!(predictive.completed >= user.completed);
    // The policy actually used the model for a meaningful share.
    assert!(
        policy.model_limits > policy.user_limits / 4,
        "model limits {} vs user limits {}",
        policy.model_limits,
        policy.user_limits
    );
}

#[test]
fn persisted_trace_drives_identical_schedule() {
    let jobs = TraceConfig::small(600, 47).generate();
    let dir = std::env::temp_dir().join("eslurm-pipeline-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.jsonl");
    trace::save_jsonl(&jobs, &path).unwrap();
    let reloaded = trace::load_jsonl(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let cfg = BackfillConfig::new(128);
    let a = simulate(&jobs, &mut UserLimit::default(), &cfg);
    let b = simulate(&reloaded, &mut UserLimit::default(), &cfg);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.total_wait, b.total_wait);
    assert_eq!(a.makespan, b.makespan);
}
