//! The tagged tracking allocator's non-perturbation guarantee, end to
//! end: the same fixed-seed ESlurm scenario as `engine_profile.rs`
//! produces **bit-identical outcomes** and **byte-identical virtual-time
//! exports** (Chrome trace, event JSONL, metrics CSV) with the heap
//! profiler armed or not, for every shard count. The `mem_host_*` series
//! live in the sampler's separate host store and never reach the default
//! CSV — host-memory is its own measurement domain (DESIGN §15), like the
//! wall-clock engine profile.
//!
//! When the `mem-profile` feature is off the profiler is compiled out
//! entirely and `MemProfiler::enabled()` hands back a disabled handle, so
//! every assertion here holds trivially in that configuration too — the
//! suite runs in both CI modes.

use eslurm_suite::emu::{FaultPlan, NodeId, Outage};
use eslurm_suite::eslurm::{EslurmConfig, EslurmSystem, EslurmSystemBuilder};
use eslurm_suite::obs::{export, mem_profile_compiled, MemProfiler, Recorder, Sampler};
use eslurm_suite::simclock::{SimSpan, SimTime};

fn cfg(m: usize) -> EslurmConfig {
    EslurmConfig {
        n_satellites: m,
        eq1_width: 48,
        relay_width: 8,
        hb_sweep_interval: SimSpan::from_secs(60),
        sat_hb_interval: SimSpan::from_secs(5),
        ..Default::default()
    }
}

/// The `sharded_des.rs` scenario — 3 satellites, 180 compute nodes, two
/// mid-run outages, 12 jobs, run to t=600s — with a heap profiler
/// threaded through the builder.
fn run(shards: usize, obs: Recorder, sampler: Sampler, mem: MemProfiler) -> EslurmSystem {
    let m = 3;
    let n_slaves = 180;
    let total = 1 + m + n_slaves;
    let plan = FaultPlan::from_outages(
        total,
        vec![
            Outage {
                node: NodeId((1 + m + 17) as u32),
                down_at: SimTime::from_secs(90),
                up_at: SimTime::from_secs(400),
            },
            Outage {
                node: NodeId((1 + m + 101) as u32),
                down_at: SimTime::from_secs(150),
                up_at: SimTime::from_secs(2000),
            },
        ],
    );
    let mut sys = EslurmSystemBuilder::new(cfg(m), n_slaves, 33)
        .faults(plan)
        .obs(obs)
        .sampler(sampler)
        .shards(shards)
        .mem_profile(mem)
        .build();
    for j in 0..12u64 {
        let start = (j as usize * 13) % (n_slaves - 48);
        sys.submit(
            SimTime::from_secs(10 + j * 25),
            j,
            &(start..start + 40).collect::<Vec<_>>(),
            SimSpan::from_secs(20 + (j % 4) * 15),
        );
    }
    sys.sim.run_until(SimTime::from_secs(600));
    sys
}

fn outcome_fingerprint(sys: &EslurmSystem) -> (SimTime, u64, u64, Vec<String>, Vec<String>) {
    let records: Vec<String> = sys
        .master()
        .records
        .iter()
        .map(|r| format!("{:?}", r))
        .collect();
    let meters: Vec<String> = (0..1 + sys.n_satellites + sys.n_slaves)
        .map(|i| {
            let m = sys.sim.meter(NodeId(i as u32));
            format!(
                "{:?}|{:?}|{:?}|{:?}|{:?}",
                m.cpu_time(),
                m.msg_counts(),
                m.peak_sockets(),
                m.sockets(),
                m.peak_mem()
            )
        })
        .collect();
    (
        sys.sim.now(),
        sys.sim.events_processed(),
        sys.sim.dropped_messages(),
        records,
        meters,
    )
}

/// Heap profiling on vs. off changes nothing the simulation can observe:
/// same outcomes and a byte-identical virtual-time sampler CSV, at every
/// shard count. The `mem_host_*` series go to the separate host store and
/// appear only when the profiler is armed (and the feature compiled).
#[test]
fn profiled_runs_are_bit_identical_to_unprofiled() {
    for shards in [1usize, 2, 4, 8] {
        let make = |mem: MemProfiler| {
            let s = Sampler::every_until(SimSpan::from_secs(1), SimTime::from_secs(300));
            let sys = run(shards, Recorder::metrics_only(), s.clone(), mem);
            (outcome_fingerprint(&sys), s.to_csv(), s.host_csv())
        };
        let (plain_fp, plain_csv, plain_host) = make(MemProfiler::disabled());
        assert!(
            !plain_host.contains("mem_host_"),
            "disabled profiler must leave the host store empty"
        );
        let profiler = MemProfiler::enabled();
        let (prof_fp, prof_csv, prof_host) = make(profiler.clone());
        assert_eq!(
            prof_fp, plain_fp,
            "{shards}-shard outcomes changed under heap profiling"
        );
        assert_eq!(
            prof_csv, plain_csv,
            "{shards}-shard sampler CSV changed under heap profiling"
        );
        if mem_profile_compiled() {
            assert!(
                prof_host.contains("mem_host_live_bytes_total"),
                "{shards}-shard armed run recorded no host series"
            );
            assert!(
                profiler.report().is_some(),
                "{shards}-shard profiler produced no report"
            );
        } else {
            assert!(
                !prof_host.contains("mem_host_"),
                "feature-off handle must stay inert"
            );
            assert!(profiler.report().is_none());
        }
    }
}

/// The virtual-time trace exports (Chrome JSON, event JSONL) are
/// byte-identical with the heap profiler armed — the host-memory domain
/// cannot leak into them.
#[test]
fn profiled_trace_exports_are_byte_identical() {
    let plain_rec = Recorder::full();
    let _ = run(
        1,
        plain_rec.clone(),
        Sampler::disabled(),
        MemProfiler::disabled(),
    );
    let plain_chrome = export::to_chrome_trace(&plain_rec.events());
    let plain_jsonl = export::to_jsonl(&plain_rec.events());
    assert!(plain_rec.events().len() > 1000, "trace suspiciously small");

    for shards in [1usize, 4] {
        let rec = Recorder::full();
        let profiler = MemProfiler::enabled();
        let _ = run(shards, rec.clone(), Sampler::disabled(), profiler);
        assert_eq!(
            export::to_chrome_trace(&rec.events()),
            plain_chrome,
            "{shards}-shard profiled Chrome trace differs"
        );
        assert_eq!(
            export::to_jsonl(&rec.events()),
            plain_jsonl,
            "{shards}-shard profiled event JSONL differs"
        );
    }
}

/// With the feature compiled, the armed run attributes activity to the
/// subsystems this scenario actually exercises: the DES shard loop, the
/// master FSM, and the satellites all show allocations, and the totals
/// obey live <= peak per tag.
#[cfg(feature = "mem-profile")]
#[test]
fn attribution_covers_the_exercised_subsystems() {
    let profiler = MemProfiler::enabled();
    let sys = run(
        1,
        Recorder::disabled(),
        Sampler::disabled(),
        profiler.clone(),
    );
    assert!(sys.sim.events_processed() > 0);
    let report = profiler.report().expect("feature on, handle armed");
    let tags: Vec<&str> = report.tags.iter().map(|t| t.tag.as_str()).collect();
    for expected in ["master", "satellite", "des-shard0"] {
        assert!(
            tags.contains(&expected),
            "tag `{expected}` missing from report (got {tags:?})"
        );
    }
    for t in &report.tags {
        assert!(
            t.live_bytes <= t.peak_bytes,
            "tag {}: live {} > peak {}",
            t.tag,
            t.live_bytes,
            t.peak_bytes
        );
        assert_eq!(
            t.classes.iter().sum::<u64>(),
            t.allocs,
            "tag {}: size-class counts must sum to allocs",
            t.tag
        );
    }
    let total = report.total_allocs();
    assert!(total > 0, "armed run recorded no allocations");
}
