//! The online SLO engine's non-perturbation guarantee, end to end: the
//! same fixed-seed faulted ESlurm scenario as `engine_profile.rs` produces
//! **bit-identical outcomes** and **byte-identical virtual-time exports**
//! (Chrome trace, event JSONL, metrics CSV) with the SLO engine armed or
//! not, at every shard count — plus the detection behaviour itself: a
//! tight objective breaches with a sane detection latency, breaches land
//! as instants on their own export track, a breach snapshots the flight
//! ring with a reason-tagged header, and health folding is
//! order-independent (proptest).

use eslurm_suite::emu::{FaultPlan, NodeId, Outage};
use eslurm_suite::eslurm::{EslurmConfig, EslurmSystem, EslurmSystemBuilder};
use eslurm_suite::obs::{
    export, FlightConfig, Recorder, Sampler, SloEngine, SloEventKind, SloSpec,
};
use eslurm_suite::simclock::{SimSpan, SimTime};
use proptest::prelude::*;

fn cfg(m: usize) -> EslurmConfig {
    EslurmConfig {
        n_satellites: m,
        eq1_width: 48,
        relay_width: 8,
        hb_sweep_interval: SimSpan::from_secs(60),
        sat_hb_interval: SimSpan::from_secs(5),
        ..Default::default()
    }
}

/// The `engine_profile.rs` scenario — 3 satellites, 180 compute nodes,
/// two mid-run outages, 12 jobs, run to t=600s — with an SLO engine
/// threaded through the builder.
fn run(shards: usize, obs: Recorder, sampler: Sampler, slo: SloEngine) -> EslurmSystem {
    let m = 3;
    let n_slaves = 180;
    let total = 1 + m + n_slaves;
    let plan = FaultPlan::from_outages(
        total,
        vec![
            Outage {
                node: NodeId((1 + m + 17) as u32),
                down_at: SimTime::from_secs(90),
                up_at: SimTime::from_secs(400),
            },
            Outage {
                node: NodeId((1 + m + 101) as u32),
                down_at: SimTime::from_secs(150),
                up_at: SimTime::from_secs(2000),
            },
        ],
    );
    let mut sys = EslurmSystemBuilder::new(cfg(m), n_slaves, 33)
        .faults(plan)
        .obs(obs)
        .sampler(sampler)
        .shards(shards)
        .slo(slo)
        .build();
    for j in 0..12u64 {
        let start = (j as usize * 13) % (n_slaves - 48);
        sys.submit(
            SimTime::from_secs(10 + j * 25),
            j,
            &(start..start + 40).collect::<Vec<_>>(),
            SimSpan::from_secs(20 + (j % 4) * 15),
        );
    }
    sys.sim.run_until(SimTime::from_secs(600));
    sys
}

fn outcome_fingerprint(sys: &EslurmSystem) -> (SimTime, u64, u64, Vec<String>, Vec<String>) {
    let records: Vec<String> = sys
        .master()
        .records
        .iter()
        .map(|r| format!("{:?}", r))
        .collect();
    let meters: Vec<String> = (0..1 + sys.n_satellites + sys.n_slaves)
        .map(|i| {
            let m = sys.sim.meter(NodeId(i as u32));
            format!(
                "{:?}|{:?}|{:?}|{:?}|{:?}",
                m.cpu_time(),
                m.msg_counts(),
                m.peak_sockets(),
                m.sockets(),
                m.peak_mem()
            )
        })
        .collect();
    (
        sys.sim.now(),
        sys.sim.events_processed(),
        sys.sim.dropped_messages(),
        records,
        meters,
    )
}

/// A spec set with one objective tight enough to breach in this scenario
/// (sweeps take milliseconds, the target is 1µs) and one that must stay
/// green. Flight dumps off — the export tests arm no ring.
fn tight_slo() -> SloEngine {
    SloEngine::with_config(
        vec![SloSpec::sweep_p99(1.0), SloSpec::master_inbox(100_000.0)],
        Vec::new(),
        false,
    )
}

/// SLOs on vs. off changes nothing the simulation can observe: same
/// outcomes and a byte-identical sampler CSV, at every shard count.
#[test]
fn slo_runs_are_bit_identical_to_plain() {
    for shards in [1usize, 2, 4, 8] {
        let make = |slo: SloEngine| {
            let s = Sampler::every_until(SimSpan::from_secs(1), SimTime::from_secs(300));
            let sys = run(shards, Recorder::metrics_only(), s.clone(), slo);
            (outcome_fingerprint(&sys), s.to_csv())
        };
        let (plain_fp, plain_csv) = make(SloEngine::disabled());
        let slo = tight_slo();
        let (slo_fp, slo_csv) = make(slo.clone());
        assert_eq!(
            slo_fp, plain_fp,
            "{shards}-shard outcomes changed under SLO evaluation"
        );
        assert_eq!(
            slo_csv, plain_csv,
            "{shards}-shard sampler CSV changed under SLO evaluation"
        );
        let report = slo.report().expect("armed engine reports");
        assert!(report.evals_total > 0, "{shards}-shard engine never ticked");
        assert!(
            report.total_breaches() > 0,
            "{shards}-shard tight objective never breached"
        );
    }
}

/// The virtual-time trace exports (base Chrome JSON, event JSONL) are
/// byte-identical with the SLO engine armed, and the combined export only
/// *adds* the pid-3 SLO track with the breach instants.
#[test]
fn slo_trace_exports_are_byte_identical_plus_breach_track() {
    let make = |slo: SloEngine| {
        let rec = Recorder::full();
        let s = Sampler::every_until(SimSpan::from_secs(1), SimTime::from_secs(300));
        let sys = run(1, rec.clone(), s, slo);
        assert!(
            !sys.sim.parallel_enabled(),
            "full tracing must fall back to the merged engine"
        );
        rec
    };
    let plain_rec = make(SloEngine::disabled());
    let plain_chrome = export::to_chrome_trace(&plain_rec.events());
    let plain_jsonl = export::to_jsonl(&plain_rec.events());
    assert!(plain_rec.events().len() > 1000, "trace suspiciously small");

    let slo = tight_slo();
    let rec = make(slo.clone());
    assert_eq!(
        export::to_chrome_trace(&rec.events()),
        plain_chrome,
        "base Chrome trace differs with SLOs armed"
    );
    assert_eq!(
        export::to_jsonl(&rec.events()),
        plain_jsonl,
        "event JSONL differs with SLOs armed"
    );

    // An empty SLO event list leaves even the combined export unchanged.
    let combined_empty = export::to_chrome_trace_with_slo(&rec.events(), &[], &[], &[], &[]);
    assert_eq!(
        combined_empty,
        export::to_chrome_trace_full(&rec.events(), &[], &[], &[]),
        "empty SLO track must not change the combined export"
    );

    // With events, the combined export gains the named SLO track and a
    // breach instant; the SLO JSONL names the breached spec.
    let events = slo.events();
    assert!(!events.is_empty());
    let combined = export::to_chrome_trace_with_slo(&rec.events(), &[], &[], &[], &events);
    assert!(combined.contains("\"name\":\"slo\""), "missing slo track");
    assert!(
        combined.contains("breach:sweep_p99_us"),
        "missing breach instant"
    );
    let jsonl = export::slo_to_jsonl(&events);
    assert!(jsonl.contains("\"kind\":\"breach\""));
    assert!(jsonl.contains("\"slo\":\"sweep_p99_us\""));
}

/// The detection behaviour itself: the tight objective breaches, the
/// green objective does not, and detection latency is positive and
/// bounded by the slow window.
#[test]
fn tight_objective_breaches_with_sane_latency() {
    let slo = tight_slo();
    let s = Sampler::every_until(SimSpan::from_secs(1), SimTime::from_secs(300));
    run(1, Recorder::metrics_only(), s, slo.clone());
    let report = slo.report().expect("armed engine reports");
    let sweep = &report.specs[0];
    assert_eq!(sweep.name, "sweep_p99_us");
    assert!(sweep.breaches > 0, "tight sweep objective must breach");
    let detect = sweep.detect_us.expect("breach records detect latency");
    assert!(
        detect > 0 && detect <= 300_000_000,
        "detect_us={detect} outside (0, slow window]"
    );
    let inbox = &report.specs[1];
    assert_eq!(inbox.breaches, 0, "generous inbox bound must stay green");
    assert!(report
        .events
        .iter()
        .any(|e| e.kind == SloEventKind::Breach && e.name == "sweep_p99_us"));
    assert_eq!(report.unmet(), 1);
    let health = slo.health(std::iter::empty::<(u32, &str)>());
    assert!(
        health.cluster < 100.0,
        "an active breach must depress cluster health"
    );
}

/// A breach snapshots the flight ring with a reason-tagged header — the
/// forensics hook. Fault-free variant of the scenario so the one dump on
/// disk is the breach dump, not a node-down dump.
#[test]
fn breach_dumps_the_flight_ring_with_a_reason_tag() {
    let dir = std::env::temp_dir().join("slo-engine-test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("breach_dump.jsonl");
    let _ = std::fs::remove_file(&path);

    let rec = Recorder::with_flight(
        FlightConfig::dumping_to(&path).with_cooldown(SimSpan::from_secs(3600)),
    );
    let slo = SloEngine::new(vec![SloSpec::sweep_p99(1.0)]);
    let m = 2;
    let mut sys = EslurmSystemBuilder::new(cfg(m), 60, 7)
        .obs(rec)
        .sampler(Sampler::every_until(
            SimSpan::from_secs(1),
            SimTime::from_secs(300),
        ))
        .slo(slo.clone())
        .build();
    sys.submit(
        SimTime::from_secs(5),
        1,
        &[0, 1, 2, 3],
        SimSpan::from_secs(30),
    );
    sys.sim.run_until(SimTime::from_secs(300));

    assert!(
        slo.report().unwrap().total_breaches() > 0,
        "scenario must breach"
    );
    let text = std::fs::read_to_string(&path).expect("breach dump written");
    assert!(
        text.starts_with("{\"flight_dump\":{\"reason\":\"slo_breach:sweep_p99_us\""),
        "dump header missing the breach reason: {}",
        text.lines().next().unwrap_or("")
    );
    let _ = std::fs::remove_file(&path);
}

proptest! {
    /// Health-score folding is order-independent over same-tick alerts:
    /// any permutation (here: rotation + optional reversal) and any
    /// duplication of the suspicion list folds to the same score.
    #[test]
    fn health_folding_is_order_independent(
        pairs in prop::collection::vec((0u32..40, 0usize..4), 0..24),
        rot in 0usize..24,
        rev in any::<bool>(),
        dup in 0usize..24,
    ) {
        const KINDS: [&str; 4] = ["temperature", "voltage", "ecc", "fan"];
        let engine = SloEngine::new(vec![SloSpec::master_inbox(10.0)]);
        let base: Vec<(u32, &str)> = pairs.iter().map(|&(n, k)| (n, KINDS[k])).collect();
        let mut perm = base.clone();
        if !perm.is_empty() {
            let n = perm.len();
            perm.rotate_left(rot % n);
            if rev {
                perm.reverse();
            }
            // Duplicates must not change the fold either.
            perm.push(perm[dup % n]);
        }
        let a = engine.health(base);
        let b = engine.health(perm);
        prop_assert_eq!(a, b);
    }
}
