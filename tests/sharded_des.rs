//! The tentpole guarantee of the sharded DES, end to end: a full ESlurm
//! deployment run over 1/2/4/8 event-queue shards produces **bit-identical
//! outcomes** (job records, clocks, event counts, meters) and
//! **byte-identical observability exports** (Chrome trace, event JSONL,
//! metrics CSV) — the obs pipeline must not be able to tell the engines
//! apart.

use eslurm_suite::emu::{FaultPlan, NodeId, Outage};
use eslurm_suite::eslurm::{EslurmConfig, EslurmSystem, EslurmSystemBuilder};
use eslurm_suite::obs::{export, Recorder, Sampler};
use eslurm_suite::simclock::{SimSpan, SimTime};

fn cfg(m: usize) -> EslurmConfig {
    EslurmConfig {
        n_satellites: m,
        eq1_width: 48,
        relay_width: 8,
        hb_sweep_interval: SimSpan::from_secs(60),
        sat_hb_interval: SimSpan::from_secs(5),
        ..Default::default()
    }
}

/// A fixed-seed ESlurm scenario: 3 satellites, 180 compute nodes, a couple
/// of mid-run outages, 12 jobs. Runs to t=600s.
fn run(shards: usize, obs: Recorder, sampler: Sampler) -> EslurmSystem {
    let m = 3;
    let n_slaves = 180;
    let total = 1 + m + n_slaves;
    let plan = FaultPlan::from_outages(
        total,
        vec![
            Outage {
                node: NodeId((1 + m + 17) as u32),
                down_at: SimTime::from_secs(90),
                up_at: SimTime::from_secs(400),
            },
            Outage {
                node: NodeId((1 + m + 101) as u32),
                down_at: SimTime::from_secs(150),
                up_at: SimTime::from_secs(2000),
            },
        ],
    );
    let mut sys = EslurmSystemBuilder::new(cfg(m), n_slaves, 33)
        .faults(plan)
        .obs(obs)
        .sampler(sampler)
        .shards(shards)
        .build();
    for j in 0..12u64 {
        let start = (j as usize * 13) % (n_slaves - 48);
        sys.submit(
            SimTime::from_secs(10 + j * 25),
            j,
            &(start..start + 40).collect::<Vec<_>>(),
            SimSpan::from_secs(20 + (j % 4) * 15),
        );
    }
    sys.sim.run_until(SimTime::from_secs(600));
    sys
}

fn outcome_fingerprint(sys: &EslurmSystem) -> (SimTime, u64, u64, Vec<String>, Vec<String>) {
    let records: Vec<String> = sys
        .master()
        .records
        .iter()
        .map(|r| format!("{:?}", r))
        .collect();
    let meters: Vec<String> = (0..1 + sys.n_satellites + sys.n_slaves)
        .map(|i| {
            let m = sys.sim.meter(NodeId(i as u32));
            format!(
                "{:?}|{:?}|{:?}|{:?}|{:?}",
                m.cpu_time(),
                m.msg_counts(),
                m.peak_sockets(),
                m.sockets(),
                m.peak_mem()
            )
        })
        .collect();
    (
        sys.sim.now(),
        sys.sim.events_processed(),
        sys.sim.dropped_messages(),
        records,
        meters,
    )
}

/// Parallel workers (metrics-only recorder) reproduce the serial outcomes
/// exactly, for every shard count.
#[test]
fn sharded_eslurm_outcomes_are_bit_identical() {
    let serial = run(1, Recorder::metrics_only(), Sampler::disabled());
    assert!(!serial.sim.parallel_enabled());
    let baseline = outcome_fingerprint(&serial);
    assert_eq!(baseline.3.len(), 12, "jobs lost in the baseline run");
    for shards in [2usize, 4, 8] {
        let sys = run(shards, Recorder::metrics_only(), Sampler::disabled());
        assert!(
            sys.sim.parallel_enabled(),
            "{shards}-shard metrics-only run should use worker threads"
        );
        assert_eq!(
            outcome_fingerprint(&sys),
            baseline,
            "{shards}-shard outcomes diverged from serial"
        );
    }
}

/// The sampler CSV (written on the parallel path) is byte-identical across
/// shard counts.
#[test]
fn sharded_metrics_csv_is_byte_identical() {
    let make = |shards| {
        let s = Sampler::every_until(SimSpan::from_secs(1), SimTime::from_secs(300));
        let sys = run(shards, Recorder::metrics_only(), s.clone());
        (sys, s.to_csv())
    };
    let (serial_sys, serial_csv) = make(1);
    assert!(serial_csv.lines().count() > 100, "expected a dense CSV");
    for shards in [2usize, 4] {
        let (sys, csv) = make(shards);
        assert!(sys.sim.parallel_enabled());
        assert_eq!(
            csv, serial_csv,
            "{shards}-shard sampler CSV differs from serial"
        );
        let _ = serial_sys; // keep the baseline alive for the comparison
    }
}

/// Full tracing forces the single-threaded merge over the sharded queues;
/// the Chrome trace and event JSONL must come out byte-identical to the
/// 1-shard run (the exports "must not notice").
#[test]
fn sharded_trace_exports_are_byte_identical() {
    let serial_rec = Recorder::full();
    let _serial = run(1, serial_rec.clone(), Sampler::disabled());
    let serial_chrome = export::to_chrome_trace(&serial_rec.events());
    let serial_jsonl = export::to_jsonl(&serial_rec.events());
    assert!(serial_rec.events().len() > 1000, "trace suspiciously small");

    for shards in [4usize, 8] {
        let rec = Recorder::full();
        let sys = run(shards, rec.clone(), Sampler::disabled());
        assert!(
            !sys.sim.parallel_enabled(),
            "full tracing must fall back to the merged engine"
        );
        assert_eq!(
            export::to_chrome_trace(&rec.events()),
            serial_chrome,
            "{shards}-shard Chrome trace differs"
        );
        assert_eq!(
            export::to_jsonl(&rec.events()),
            serial_jsonl,
            "{shards}-shard event JSONL differs"
        );
    }
}
