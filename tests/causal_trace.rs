//! Causal-trace integration: the `TraceContext` propagated on message
//! envelopes must reconstruct into deterministic causal trees whose
//! critical-path decomposition sums exactly to the end-to-end latency,
//! must not perturb the simulation when the recorder is off (or on), and
//! must yield the same tree *shape* on both transports.

use eslurm_suite::eslurm::prelude::*;
use obs::causal::{render_critical_path, render_flow_summaries};
use obs::{build_traces, flow_summaries, FlowKind, TraceTree};

/// The reference fault scenario: one satellite that dies during the first
/// job's dispatch window, forcing BT-failure retries and a takeover-free
/// recovery, plus periodic heartbeat sweeps.
fn faulted_run(seed: u64, rec: Recorder) -> (Recorder, EslurmSystem) {
    let cfg = EslurmConfig {
        n_satellites: 1,
        eq1_width: 32,
        relay_width: 8,
        ..Default::default()
    };
    let plan = FaultPlan::from_outages(
        1 + 1 + 32,
        vec![Outage {
            node: NodeId(1),
            down_at: SimTime::from_secs(4),
            up_at: SimTime::from_secs(60),
        }],
    );
    let mut sys = EslurmSystemBuilder::new(cfg, 32, seed)
        .obs(rec.clone())
        .faults(plan)
        .build();
    sys.submit(
        SimTime::from_secs(5),
        1,
        &(0..16).collect::<Vec<_>>(),
        SimSpan::from_secs(10),
    );
    sys.submit(
        SimTime::from_secs(70),
        2,
        &(16..32).collect::<Vec<_>>(),
        SimSpan::from_secs(10),
    );
    sys.sim.run_until(SimTime::from_secs(180));
    (rec, sys)
}

/// Render every trace's critical path plus the flow summaries — the same
/// text `eslurm critical-path` prints, as one comparable report.
fn full_report(trees: &[TraceTree]) -> String {
    let mut out = String::new();
    for t in trees {
        out.push_str(&render_critical_path(&t.critical_path()));
    }
    out.push_str(&render_flow_summaries(&flow_summaries(trees)));
    out
}

#[test]
fn same_seed_runs_render_byte_identical_reports() {
    let (a, _) = faulted_run(42, Recorder::full());
    let (b, _) = faulted_run(42, Recorder::full());
    let (ra, rb) = (a.causal_records(), b.causal_records());
    assert!(!ra.is_empty(), "faulted run recorded no causal records");
    assert_eq!(ra, rb, "same-seed causal records must be identical");
    let report_a = full_report(&build_traces(&ra));
    let report_b = full_report(&build_traces(&rb));
    assert!(!report_a.is_empty());
    assert_eq!(
        report_a, report_b,
        "same-seed critical-path reports must be byte-identical"
    );
}

#[test]
fn per_hop_attribution_sums_to_end_to_end_latency() {
    let (rec, _) = faulted_run(42, Recorder::full());
    let trees = build_traces(&rec.causal_records());
    assert!(
        trees.len() >= 3,
        "expected several traces, got {}",
        trees.len()
    );
    // The faulted scenario exercises all three flow kinds.
    for kind in [FlowKind::Dispatch, FlowKind::Sweep, FlowKind::Recovery] {
        assert!(
            trees.iter().any(|t| t.flow == kind),
            "no {} trace recorded",
            kind.name()
        );
    }
    for t in &trees {
        let cp = t.critical_path();
        assert_eq!(
            cp.component_sum_us(),
            cp.end_to_end_us,
            "trace {}: components must sum exactly to end-to-end latency\n{}",
            t.trace,
            render_critical_path(&cp)
        );
    }
    // The dead satellite's dispatch timeouts are attributed as backoff
    // intervals on the affected traces.
    let total_backoffs: usize = trees.iter().map(|t| t.backoffs.len()).sum();
    assert!(
        total_backoffs > 0,
        "faulted run should record backoff intervals"
    );
}

#[test]
fn causal_tracing_does_not_perturb_the_simulation() {
    let (_, plain) = faulted_run(42, Recorder::disabled());
    let (_, traced) = faulted_run(42, Recorder::full());
    // An enabled recorder queues two extra fault-marker events per outage
    // (pre-existing behavior, so node up/down land in the trace); those
    // markers touch no actor, so everything else must match exactly.
    assert_eq!(
        plain.sim.events_processed() + 2,
        traced.sim.events_processed(),
        "tracing changed the event count beyond the fault markers"
    );
    let (p, t) = (plain.master(), traced.master());
    assert_eq!(p.records.len(), t.records.len());
    for (a, b) in p.records.iter().zip(t.records.iter()) {
        assert_eq!(a.job, b.job);
        assert_eq!(a.submitted, b.submitted);
        assert_eq!(a.launch_done, b.launch_done);
        assert_eq!(a.finished, b.finished);
    }
    assert_eq!(p.reassignments, t.reassignments);
    assert_eq!(p.takeovers, t.takeovers);
    assert_eq!(p.sweeps.len(), t.sweeps.len());
}

/// A minimal fixed-fan-out relay: node 0 roots a dispatch trace and sends
/// to 1 and 2; node 2 forwards to 3 and 4; everyone else just receives.
struct FanOut;

impl Actor<u64> for FanOut {
    fn on_start(&mut self, ctx: &mut dyn Context<u64>) {
        if ctx.me() == NodeId(0) {
            ctx.trace_begin(FlowKind::Dispatch);
            ctx.send(NodeId(1), 7);
            ctx.send(NodeId(2), 7);
        }
    }
    fn on_message(&mut self, ctx: &mut dyn Context<u64>, _from: NodeId, msg: u64) {
        if ctx.me() == NodeId(2) {
            ctx.send(NodeId(3), msg);
            ctx.send(NodeId(4), msg);
        }
    }
}

#[test]
fn des_and_thread_transports_yield_the_same_tree_shape() {
    // DES.
    let rec_des = Recorder::full();
    let cfg = SimConfig {
        obs: rec_des.clone(),
        ..SimConfig::new(5, 9)
    };
    let mut sim = eslurm_suite::emu::SimCluster::new((0..5).map(|_| FanOut).collect(), cfg);
    sim.run_to_quiescence();

    // Real threads.
    let rec_thr = Recorder::full();
    let cluster = eslurm_suite::emu::ThreadCluster::start_with_obs(
        (0..5).map(|_| FanOut).collect(),
        9,
        rec_thr.clone(),
    );
    std::thread::sleep(std::time::Duration::from_millis(200));
    cluster.shutdown();

    let des = build_traces(&rec_des.causal_records());
    let thr = build_traces(&rec_thr.causal_records());
    assert_eq!(des.len(), 1, "DES run should record exactly one trace");
    assert_eq!(thr.len(), 1, "thread run should record exactly one trace");
    assert_eq!(des[0].shape(), "dispatch:0(1,2(3,4))");
    assert_eq!(
        des[0].shape(),
        thr[0].shape(),
        "both transports must reconstruct the same causal tree shape"
    );
}
