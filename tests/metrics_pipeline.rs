//! Metrics-pipeline integration: the sampler → exposition → diff path must
//! hold end-to-end on a real emulated run — strictly well-formed Prometheus
//! text, CSV that round-trips through the regression gate with a zero
//! self-diff, byte-identical CSV for identical seeds, and a flight ring
//! that auto-dumps the moment a node dies.

use eslurm_suite::eslurm::prelude::*;
use eslurm_suite::obs::{compare_csv, export, DiffOptions, FlightConfig, MetricId, Sampler};

/// A 32-node two-satellite deployment with a mid-run satellite outage,
/// sampled at 1 Hz for two virtual minutes.
fn sampled_run(seed: u64, rec: Recorder) -> (Recorder, Sampler) {
    let horizon = SimTime::from_secs(120);
    let sampler = Sampler::every_until(SimSpan::from_secs(1), horizon);
    let plan = FaultPlan::from_outages(
        1 + 2 + 32,
        vec![Outage {
            node: NodeId(1),
            down_at: SimTime::from_secs(30),
            up_at: SimTime::from_secs(80),
        }],
    );
    let cfg = EslurmConfig {
        n_satellites: 2,
        ..Default::default()
    };
    let mut sys = EslurmSystemBuilder::new(cfg, 32, seed)
        .obs(rec.clone())
        .sampler(sampler.clone())
        .faults(plan)
        .build();
    for (i, start) in [5u64, 20, 45, 90].iter().enumerate() {
        sys.submit(
            SimTime::from_secs(*start),
            i as u64 + 1,
            &(0..16).collect::<Vec<_>>(),
            SimSpan::from_secs(15),
        );
    }
    sys.sim.run_until(horizon);
    (rec, sampler)
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        && !name.starts_with(|c: char| c.is_ascii_digit())
}

/// The family a sample line belongs to: histogram series suffixes hang off
/// the family that declared the `# TYPE`.
fn family_of(name: &str) -> &str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stripped) = name.strip_suffix(suffix) {
            return stripped;
        }
    }
    name
}

#[test]
fn prometheus_exposition_is_strictly_well_formed() {
    let (rec, _) = sampled_run(7, Recorder::metrics_only());
    let text = export::to_prometheus(&rec);
    assert!(!text.is_empty());
    assert!(text.ends_with('\n'), "exposition must end with a newline");

    let mut typed: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut samples = 0usize;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest.split_once(' ').expect("HELP needs name + text");
            assert!(valid_metric_name(name), "bad HELP name {name:?}");
            assert!(!help.is_empty(), "empty HELP for {name}");
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').expect("TYPE needs name + kind");
            assert!(valid_metric_name(name), "bad TYPE name {name:?}");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram" | "untyped"),
                "unknown TYPE {kind:?} for {name}"
            );
            assert!(typed.insert(name.to_string()), "duplicate TYPE for {name}");
            continue;
        }
        assert!(!line.starts_with('#'), "unknown comment form: {line:?}");
        // A sample: `name value` or `name{k="v",...} value`.
        let (series, value) = line.rsplit_once(' ').expect("sample needs a value");
        let name = match series.split_once('{') {
            None => series,
            Some((name, labels)) => {
                let labels = labels.strip_suffix('}').expect("unclosed label braces");
                for pair in labels.split("\",") {
                    let (k, v) = pair.split_once("=\"").expect("label needs k=\"v\"");
                    assert!(valid_metric_name(k), "bad label key {k:?} in {line:?}");
                    let v = v.strip_suffix('"').unwrap_or(v);
                    assert!(
                        !v.contains('"') && !v.contains('\n'),
                        "unescaped label value {v:?}"
                    );
                }
                name
            }
        };
        assert!(valid_metric_name(name), "bad sample name {name:?}");
        assert!(
            name.starts_with("eslurm_"),
            "sample {name} missing the eslurm_ namespace"
        );
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable value {value:?} on {line:?}"
        );
        assert!(
            typed.contains(family_of(name)),
            "sample {name} has no preceding # TYPE"
        );
        samples += 1;
    }
    assert!(samples > 20, "suspiciously few samples: {samples}");
}

#[test]
fn csv_round_trip_self_diff_is_zero() {
    let (_, sampler) = sampled_run(7, Recorder::metrics_only());
    let csv = sampler.to_csv();
    assert!(csv.lines().count() > 100, "expected a dense series CSV");

    // Footprint gating and gate-all must both see identical runs as clean.
    for gate_all in [false, true] {
        let opts = DiffOptions {
            gate_all,
            ..Default::default()
        };
        let report = compare_csv(&csv, &csv, &opts).expect("self-diff parses");
        assert!(report.only_in_base.is_empty() && report.only_in_new.is_empty());
        assert!(!report.deltas.is_empty(), "self-diff compared nothing");
        assert!(report.regressions().is_empty(), "self-diff regressed");
        for d in &report.deltas {
            assert_eq!(
                d.pct, 0.0,
                "{} {} drifted on identical input",
                d.metric, d.stat
            );
        }
    }
}

#[test]
fn injected_regression_trips_the_gate() {
    let (_, sampler) = sampled_run(7, Recorder::metrics_only());
    let base = Sampler::every(SimSpan::from_secs(1));
    let bloated = Sampler::every(SimSpan::from_secs(1));
    let id = || MetricId::new("footprint_virt_bytes").with("node", "master");
    for s in 0..30u64 {
        let t = SimTime::from_secs(s);
        base.record(t, id(), 1000.0);
        bloated.record(t, id(), 1200.0); // +20 % over a 5 % threshold
    }
    let report = compare_csv(&base.to_csv(), &bloated.to_csv(), &DiffOptions::default())
        .expect("diff parses");
    assert!(
        !report.regressions().is_empty(),
        "a 20% footprint increase must trip the 5% gate"
    );
    // The other direction is an improvement, never a regression.
    let report = compare_csv(&bloated.to_csv(), &base.to_csv(), &DiffOptions::default())
        .expect("diff parses");
    assert!(report.regressions().is_empty());
    drop(sampler);
}

#[test]
fn same_seed_runs_emit_byte_identical_csv() {
    let (_, a) = sampled_run(42, Recorder::metrics_only());
    let (_, b) = sampled_run(42, Recorder::metrics_only());
    assert_eq!(a.to_csv(), b.to_csv(), "same-seed CSVs must match bytewise");

    let (_, c) = sampled_run(43, Recorder::metrics_only());
    assert_ne!(
        a.to_csv(),
        c.to_csv(),
        "different seeds should visibly differ"
    );
}

#[test]
fn node_fault_auto_dumps_the_flight_ring() {
    let dir = std::env::temp_dir().join(format!("eslurm-flight-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("flight.jsonl");
    let _ = std::fs::remove_file(&path);

    let rec = Recorder::with_flight(FlightConfig::dumping_to(&path));
    let (rec, _) = sampled_run(7, rec);

    // The dump was written at the NodeDown instant, not at shutdown.
    let dump = std::fs::read_to_string(&path).expect("flight dump missing after fault");
    assert!(
        dump.lines().any(|l| l.contains("\"kind\":\"node_down\"")),
        "dump lacks the node_down marker"
    );
    for line in dump.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not JSONL: {line:?}"
        );
    }

    // A final explicit dump includes the post-fault tail as well.
    let n = rec
        .flight_dump()
        .expect("flight configured")
        .expect("dump ok");
    assert!(n > 0);
    let dump = std::fs::read_to_string(&path).unwrap();
    assert!(dump.lines().any(|l| l.contains("\"kind\":\"node_up\"")));
    std::fs::remove_dir_all(&dir).ok();
}
