//! The paper's core architectural claim, as an integration test: under
//! identical load, ESlurm's master consumes a fraction of a centralized
//! master's CPU, memory, and connections — because the satellite layer
//! absorbs the fan-out.

use eslurm_suite::emu::NodeId;
use eslurm_suite::eslurm::{EslurmConfig, EslurmSystemBuilder};
use eslurm_suite::rm::{RmClusterBuilder, RmProfile};
use eslurm_suite::simclock::{SimSpan, SimTime};

const N: usize = 512;
const HORIZON_S: u64 = 1800;

fn run_centralized(profile: RmProfile) -> (SimSpan, u64, u32, u64) {
    let mut h = RmClusterBuilder::new(profile, N + 1).seed(7).build();
    for j in 0..20u64 {
        h.submit(
            SimTime::from_secs(30 + j * 60),
            j,
            (1..=256).collect(),
            SimSpan::from_secs(45),
        );
    }
    h.sim.run_until(SimTime::from_secs(HORIZON_S));
    assert_eq!(h.master_actor().records.len(), 20, "centralized jobs lost");
    let m = h.sim.meter(NodeId::MASTER);
    let (_, received) = m.msg_counts();
    (m.cpu_time(), m.virt_mem(), m.peak_sockets(), received)
}

fn run_eslurm() -> (SimSpan, u64, u32, u64) {
    let cfg = EslurmConfig {
        n_satellites: 2,
        eq1_width: 256,
        ..Default::default()
    };
    let mut sys = EslurmSystemBuilder::new(cfg, N, 7).build();
    for j in 0..20u64 {
        sys.submit(
            SimTime::from_secs(30 + j * 60),
            j,
            &(0..256).collect::<Vec<_>>(),
            SimSpan::from_secs(45),
        );
    }
    sys.sim.run_until(SimTime::from_secs(HORIZON_S));
    assert_eq!(sys.master().records.len(), 20, "eslurm jobs lost");
    let m = sys.sim.meter(NodeId::MASTER);
    let (_, received) = m.msg_counts();
    (m.cpu_time(), m.virt_mem(), m.peak_sockets(), received)
}

#[test]
fn eslurm_master_offloads_centralized_masters() {
    let (es_cpu, es_virt, es_socks, es_msgs) = run_eslurm();
    for profile in RmProfile::baselines() {
        let name = profile.name;
        let (cpu, virt, socks, msgs) = run_centralized(profile);
        assert!(
            es_cpu.as_micros() < cpu.as_micros(),
            "{name}: ESlurm master CPU {es_cpu} not below {cpu}"
        );
        // Virtual-memory baselines differ mostly in fixed footprint at
        // this small scale; the per-node slope is what matters for
        // scalability, so only the heavyweight masters (Slurm, LSF) must
        // already be above ESlurm at 512 nodes (Fig. 7c shows the rest
        // overtaking it by 4K nodes via their per-node slopes).
        if matches!(name, "Slurm" | "LSF") {
            assert!(
                es_virt < virt,
                "{name}: ESlurm master virt {es_virt} not below {virt}"
            );
        }
        assert!(
            es_socks < socks,
            "{name}: ESlurm master peak sockets {es_socks} not below {socks}"
        );
        assert!(
            es_msgs < msgs / 4,
            "{name}: ESlurm master received {es_msgs} msgs, centralized {msgs}"
        );
    }
}

#[test]
fn eslurm_master_sockets_independent_of_cluster_size() {
    // The defining scalability property: master connections track the
    // satellite pool, not the compute-node count.
    let peak_for = |n_slaves: usize| {
        let cfg = EslurmConfig {
            n_satellites: 2,
            ..Default::default()
        };
        let mut sys = EslurmSystemBuilder::new(cfg, n_slaves, 9).build();
        sys.sim.run_until(SimTime::from_secs(600));
        sys.sim.meter(NodeId::MASTER).peak_sockets()
    };
    let small = peak_for(64);
    let big = peak_for(1024);
    assert!(
        big <= small + 2,
        "master sockets grew with the cluster: {small} -> {big}"
    );
    assert!(big <= 8);
}
