//! Property-based tests on the core invariants, spanning crates.

use eslurm_suite::eslurm::satellites_needed;
use eslurm_suite::rm::{decode, encode, CtlKind, NodeSlice, RmMsg};
use eslurm_suite::sched::prelude::{simulate, BackfillConfig, UserLimit};
use eslurm_suite::topology::{
    broadcast, leaf_positions, rearrange, relay_depth, split_balanced, BcastParams, Structure,
};
use eslurm_suite::workload::TraceConfig;
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// FP rearrangement is always a permutation of its input, and when
    /// leaves outnumber suspects every suspect lands on a leaf.
    #[test]
    fn rearrange_is_permutation(
        n in 1usize..600,
        w in 2usize..40,
        suspect_stride in 1usize..50,
    ) {
        let list: Vec<u32> = (0..n as u32).collect();
        let suspects: HashSet<u32> = (0..n as u32).step_by(suspect_stride).collect();
        let out = rearrange(&list, &suspects, w);
        let mut sorted = out.clone();
        sorted.sort();
        prop_assert_eq!(&sorted, &list);
        let leaves = leaf_positions(n, w);
        let leaf_count = leaves.iter().filter(|&&l| l).count();
        if suspects.len() <= leaf_count {
            for (pos, node) in out.iter().enumerate() {
                if suspects.contains(node) {
                    prop_assert!(leaves[pos], "suspect {node} at internal pos {pos}");
                }
            }
        }
    }

    /// Leaf marking agrees with the recursion cost model: at least one
    /// leaf, never more leaves than nodes, and leaf count grows with w.
    #[test]
    fn leaf_positions_sane(n in 1usize..2000, w in 2usize..64) {
        let leaves = leaf_positions(n, w);
        prop_assert_eq!(leaves.len(), n);
        prop_assert!(leaves.iter().any(|&l| l), "no leaves at all");
    }

    /// split_balanced covers the range exactly with near-equal parts.
    #[test]
    fn split_covers(len in 0usize..10_000, k in 1usize..64) {
        let parts = split_balanced(len, k);
        let total: usize = parts.iter().map(|(_, l)| l).sum();
        prop_assert_eq!(total, len);
        let mut expect = 0;
        for (start, l) in &parts {
            prop_assert_eq!(*start, expect);
            expect += l;
            prop_assert!(*l >= 1);
        }
        if let (Some(min), Some(max)) = (
            parts.iter().map(|(_, l)| l).min(),
            parts.iter().map(|(_, l)| l).max(),
        ) {
            prop_assert!(max - min <= 1);
        }
    }

    /// Every broadcast structure reaches exactly the live nodes.
    #[test]
    fn broadcast_reaches_all_live(
        n in 1u32..800,
        stride in 2usize..20,
        structure in prop::sample::select(&Structure::ALL[..]),
    ) {
        let nodes: Vec<u32> = (0..n).collect();
        let failed: HashSet<u32> = (0..n).step_by(stride).collect();
        let params = BcastParams::default();
        let r = broadcast(structure, &nodes, &failed, &failed, &params);
        prop_assert_eq!(r.reached, (n as usize) - failed.len());
    }

    /// Eq. 1 stays within `[1, m]` and is monotone in `s`.
    #[test]
    fn eq1_bounds(s in 1usize..100_000, w in 1usize..5_000, m in 1usize..64) {
        let n = satellites_needed(s, w, m);
        prop_assert!(n >= 1 && n <= m);
        let n2 = satellites_needed(s + w, w, m);
        prop_assert!(n2 >= n, "Eq.1 not monotone: {n2} < {n}");
    }

    /// relay_depth is monotone in n and logarithmic-ish.
    #[test]
    fn relay_depth_monotone(n in 0usize..100_000, w in 2usize..64) {
        let d = relay_depth(n, w);
        prop_assert!(relay_depth(n + 1, w) >= d);
        if n > 0 {
            // Never deeper than a chain of per-level shrink factors.
            prop_assert!(d <= 2 + (n as f64).log2() as usize);
        } else {
            prop_assert_eq!(d, 0);
        }
    }

    /// Protocol codec round-trips arbitrary messages.
    #[test]
    fn codec_round_trips(
        job in any::<u64>(),
        count in any::<u32>(),
        width in 2u16..512,
        list in prop::collection::vec(any::<u32>(), 0..200),
        kind_sel in 0u8..3,
    ) {
        let kind = match kind_sel {
            0 => CtlKind::Launch,
            1 => CtlKind::Terminate,
            _ => CtlKind::Ping,
        };
        let msgs = vec![
            RmMsg::JobCtl { job, kind, list: NodeSlice::new(list.clone()), width },
            RmMsg::CtlAck { job, kind, count },
            RmMsg::BcastTask { task: count as u64, job, kind, list: NodeSlice::new(list), width },
        ];
        for m in msgs {
            prop_assert_eq!(Some(m.clone()), decode(encode(&m)));
        }
    }

    /// Truncated encodings never panic, they just fail to decode.
    #[test]
    fn codec_truncation_safe(
        list in prop::collection::vec(any::<u32>(), 0..50),
        cut in 0usize..64,
    ) {
        let m = RmMsg::JobCtl {
            job: 1,
            kind: CtlKind::Launch,
            list: NodeSlice::new(list),
            width: 8,
        };
        let bytes = encode(&m);
        let cut = cut.min(bytes.len());
        let _ = decode(bytes.slice(0..cut)); // must not panic
    }

    /// The scheduler conserves jobs: completed + abandoned = submitted.
    #[test]
    fn scheduler_conserves_jobs(n_jobs in 10usize..200, nodes in 8u32..256, seed in 0u64..50) {
        let jobs = TraceConfig::small(n_jobs, seed).generate();
        let mut policy = UserLimit::default();
        let r = simulate(&jobs, &mut policy, &BackfillConfig::new(nodes));
        prop_assert_eq!(r.completed + r.abandoned, n_jobs);
        prop_assert!(r.utilization() <= 1.0);
        prop_assert!(r.useful_utilization() <= r.utilization() + 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Trace generation is a function of its seed (no hidden global state).
    #[test]
    fn trace_deterministic(seed in 0u64..1_000) {
        let a = TraceConfig::small(200, seed).generate();
        let b = TraceConfig::small(200, seed).generate();
        prop_assert_eq!(a, b);
    }

    /// No job is ever lost: whatever random compute-node outages happen,
    /// every submitted job's lifecycle completes (partial acks, timeouts,
    /// reassignment, and takeover all eventually converge).
    #[test]
    fn eslurm_never_loses_jobs_under_random_failures(
        seed in 0u64..200,
        n_outages in 0usize..12,
    ) {
        use eslurm_suite::emu::{FaultPlan, FaultPlanBuilder};
        use eslurm_suite::eslurm::{EslurmConfig, EslurmSystemBuilder};
        use eslurm_suite::simclock::{SimSpan, SimTime};

        let m = 2;
        let n_slaves = 120;
        let total = 1 + m + n_slaves;
        // Random compute-node outages (never the master or satellites, which
        // have their own dedicated tests).
        let plan = if n_outages == 0 {
            FaultPlan::none(total)
        } else {
            let raw = FaultPlanBuilder::new(total, SimSpan::from_secs(400), seed)
                .small_events(n_outages, 4)
                .mean_outage(SimSpan::from_secs(120))
                .build();
            let shifted: Vec<_> = raw
                .outages()
                .iter()
                .map(|o| eslurm_suite::emu::Outage {
                    node: eslurm_suite::emu::NodeId(
                        1 + m as u32 + (o.node.0 % n_slaves as u32),
                    ),
                    down_at: o.down_at,
                    up_at: o.up_at,
                })
                .collect();
            FaultPlan::from_outages(total, shifted)
        };
        let cfg = EslurmConfig {
            n_satellites: m,
            eq1_width: 48,
            relay_width: 8,
            ..Default::default()
        };
        let mut sys = EslurmSystemBuilder::new(cfg, n_slaves, seed).faults(plan).build();
        for j in 0..8u64 {
            sys.submit(
                SimTime::from_secs(5 + j * 20),
                j,
                &((j as usize * 11) % 40..(j as usize * 11) % 40 + 60)
                    .collect::<Vec<_>>(),
                SimSpan::from_secs(15),
            );
        }
        sys.sim.run_until(SimTime::from_secs(1200));
        prop_assert_eq!(sys.master().records.len(), 8, "jobs lost");
    }

    /// Sharding is unobservable: for any seed and shard count, an ESlurm
    /// run produces the same job records and clock as the serial engine,
    /// byte-identical sampler CSV on the parallel path, and byte-identical
    /// Chrome-trace / event-JSONL exports on the traced (merged) path.
    #[test]
    fn sharded_runs_are_byte_identical(seed in 0u64..100, shards in 2usize..9) {
        use eslurm_suite::eslurm::{EslurmConfig, EslurmSystemBuilder};
        use eslurm_suite::obs::{export, Recorder, Sampler};
        use eslurm_suite::simclock::{SimSpan, SimTime};

        let m = 2;
        let n_slaves = 60;
        let run = |shards: usize, rec: Recorder, sampler: Sampler| {
            let cfg = EslurmConfig {
                n_satellites: m,
                eq1_width: 32,
                relay_width: 8,
                ..Default::default()
            };
            let mut sys = EslurmSystemBuilder::new(cfg, n_slaves, seed)
                .obs(rec)
                .sampler(sampler)
                .shards(shards)
                .build();
            for j in 0..5u64 {
                sys.submit(
                    SimTime::from_secs(5 + j * 30),
                    j,
                    &((j as usize * 9) % 30..(j as usize * 9) % 30 + 25)
                        .collect::<Vec<_>>(),
                    SimSpan::from_secs(20),
                );
            }
            sys.sim.run_until(SimTime::from_secs(300));
            sys
        };

        // Parallel path: metrics + sampler CSV.
        let base_sampler = Sampler::every_until(SimSpan::from_secs(1), SimTime::from_secs(200));
        let base = run(1, Recorder::metrics_only(), base_sampler.clone());
        let shard_sampler = Sampler::every_until(SimSpan::from_secs(1), SimTime::from_secs(200));
        let sharded = run(shards, Recorder::metrics_only(), shard_sampler.clone());
        prop_assert!(sharded.sim.parallel_enabled());
        prop_assert_eq!(base.sim.now(), sharded.sim.now());
        prop_assert_eq!(base.sim.events_processed(), sharded.sim.events_processed());
        prop_assert_eq!(base.master().records.len(), sharded.master().records.len());
        for (a, b) in base.master().records.iter().zip(&sharded.master().records) {
            prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
        prop_assert_eq!(base_sampler.to_csv(), shard_sampler.to_csv(), "sampler CSV differs");

        // Traced (merged) path: Chrome trace + event JSONL.
        let rec_a = Recorder::full();
        let rec_b = Recorder::full();
        run(1, rec_a.clone(), Sampler::disabled());
        run(shards, rec_b.clone(), Sampler::disabled());
        prop_assert_eq!(
            export::to_chrome_trace(&rec_a.events()),
            export::to_chrome_trace(&rec_b.events()),
            "chrome trace differs"
        );
        prop_assert_eq!(
            export::to_jsonl(&rec_a.events()),
            export::to_jsonl(&rec_b.events()),
            "event JSONL differs"
        );
    }
}
