//! The multi-tenant policy layers, end to end: the zero-cost-default
//! guarantee (an explicit default `SchedPolicies` bundle is bit-identical
//! to the policy-unaware scheduler on the fig9/fig10 seeds, in both the
//! queueing simulator and the sharded DES across 1/2/4/8 shards),
//! order-independence of the fair-share decay ledger for same-virtual-time
//! completions, and the multifactor audit contract (`PriorityRanked`
//! factor contributions sum exactly to the composed priority).

use eslurm_suite::emu::NodeId;
use eslurm_suite::eslurm::{EslurmConfig, EslurmSystem, EslurmSystemBuilder, PredictiveLimit};
use eslurm_suite::estimate::EstimatorConfig;
use eslurm_suite::obs::audit::{Decision, DecisionLog};
use eslurm_suite::sched::prelude::{
    simulate, BackfillConfig, FairShareLedger, MultifactorPriority, PartitionSet, SchedAlgo,
    SchedPolicies, ScheduleReport,
};
use eslurm_suite::simclock::{SimSpan, SimTime};
use eslurm_suite::workload::TraceConfig;
use proptest::prelude::*;

/// The explicit spelling of the default bundle: single default partition,
/// uniform priority, disabled fair-share. Must be indistinguishable from
/// never mentioning policies at all.
fn explicit_default_policies() -> SchedPolicies {
    SchedPolicies::default()
        .with_partitions(PartitionSet::single_default())
        .with_priority(MultifactorPriority::uniform())
        .with_fairshare(FairShareLedger::disabled())
}

fn run_queue_sim(
    trace: &TraceConfig,
    nodes: u32,
    algo: SchedAlgo,
    policies: Option<SchedPolicies>,
) -> ScheduleReport {
    let jobs = trace.clone().generate();
    let mut policy = PredictiveLimit::new(EstimatorConfig::default());
    let mut cfg = BackfillConfig {
        algo,
        ..BackfillConfig::new(nodes)
    };
    if let Some(p) = policies {
        cfg.policies = p;
    }
    simulate(&jobs, &mut policy, &cfg)
}

fn assert_reports_identical(a: &ScheduleReport, b: &ScheduleReport, label: &str) {
    assert_eq!(a.completed, b.completed, "{label}: completed");
    assert_eq!(a.killed, b.killed, "{label}: killed");
    assert_eq!(a.abandoned, b.abandoned, "{label}: abandoned");
    assert_eq!(
        a.occupied_node_secs.to_bits(),
        b.occupied_node_secs.to_bits(),
        "{label}: occupied_node_secs"
    );
    assert_eq!(
        a.useful_node_secs.to_bits(),
        b.useful_node_secs.to_bits(),
        "{label}: useful_node_secs"
    );
    assert_eq!(a.total_wait, b.total_wait, "{label}: total_wait");
    assert_eq!(
        a.total_slowdown.to_bits(),
        b.total_slowdown.to_bits(),
        "{label}: total_slowdown"
    );
    assert_eq!(a.makespan, b.makespan, "{label}: makespan");
    assert_eq!(a.nodes, b.nodes, "{label}: nodes");
    assert_eq!(a.per_user, b.per_user, "{label}: per_user");
}

/// Default partition + uniform priority + disabled fair-share reproduces
/// the policy-unaware scheduler bit for bit, on the fig9/fig10 default
/// seed and a second seed, under both backfill disciplines.
#[test]
fn explicit_default_policies_are_bit_identical_to_implicit() {
    for (trace, nodes, label) in [
        (TraceConfig::small(400, 42), 64, "small/seed42"),
        (TraceConfig::small(300, 17), 48, "small/seed17"),
        (
            TraceConfig::tianhe2a().with_seed(42).with_jobs(500),
            4096,
            "tianhe2a/seed42",
        ),
    ] {
        for algo in [SchedAlgo::Easy, SchedAlgo::Conservative] {
            let implicit = run_queue_sim(&trace, nodes, algo, None);
            let explicit = run_queue_sim(&trace, nodes, algo, Some(explicit_default_policies()));
            assert_reports_identical(&implicit, &explicit, &format!("{label}/{algo:?}"));
        }
    }
}

/// The same guarantee holds for the decision stream itself: with auditing
/// on, the explicit default bundle emits a byte-identical log (no
/// `PriorityRanked` records sneak in, no decision reorders).
#[test]
fn explicit_default_policies_emit_byte_identical_audit_logs() {
    let trace = TraceConfig::small(400, 42);
    let run = |policies: Option<SchedPolicies>, audit: DecisionLog| {
        let jobs = trace.clone().generate();
        let mut policy = PredictiveLimit::new(EstimatorConfig::default());
        let mut cfg = BackfillConfig {
            algo: SchedAlgo::Easy,
            audit,
            ..BackfillConfig::new(64)
        };
        if let Some(p) = policies {
            cfg.policies = p;
        }
        simulate(&jobs, &mut policy, &cfg)
    };
    let a = DecisionLog::unbounded();
    let b = DecisionLog::unbounded();
    run(None, a.clone());
    run(Some(explicit_default_policies()), b.clone());
    let ja = a.to_jsonl();
    assert!(!ja.is_empty());
    assert_eq!(ja, b.to_jsonl(), "default policies perturbed the audit log");
    assert!(
        !ja.contains("priority_ranked"),
        "uniform priority must never emit PriorityRanked records"
    );
}

/// A fixed-seed ESlurm deployment scenario (the `tests/sharded_des.rs`
/// shape, minus faults): 3 satellites, 180 compute nodes, 12 jobs, run to
/// t=600s.
fn run_des(shards: usize, policies: bool) -> EslurmSystem {
    let m = 3;
    let n_slaves = 180;
    let cfg = EslurmConfig {
        n_satellites: m,
        eq1_width: 48,
        relay_width: 8,
        hb_sweep_interval: SimSpan::from_secs(60),
        sat_hb_interval: SimSpan::from_secs(5),
        ..Default::default()
    };
    let mut b = EslurmSystemBuilder::new(cfg, n_slaves, 33).shards(shards);
    if policies {
        b = b
            .partitions(PartitionSet::single_default())
            .fairshare(FairShareLedger::disabled())
            .priority(MultifactorPriority::uniform());
    }
    let mut sys = b.build();
    for j in 0..12u64 {
        let start = (j as usize * 13) % (n_slaves - 48);
        sys.submit(
            SimTime::from_secs(10 + j * 25),
            j,
            &(start..start + 40).collect::<Vec<_>>(),
            SimSpan::from_secs(20 + (j % 4) * 15),
        );
    }
    sys.sim.run_until(SimTime::from_secs(600));
    sys
}

fn des_fingerprint(sys: &EslurmSystem) -> (SimTime, u64, u64, Vec<String>, Vec<String>) {
    let records: Vec<String> = sys
        .master()
        .records
        .iter()
        .map(|r| format!("{:?}", r))
        .collect();
    let meters: Vec<String> = (0..1 + sys.n_satellites + sys.n_slaves)
        .map(|i| {
            let m = sys.sim.meter(NodeId(i as u32));
            format!(
                "{:?}|{:?}|{:?}|{:?}|{:?}",
                m.cpu_time(),
                m.msg_counts(),
                m.peak_sockets(),
                m.sockets(),
                m.peak_mem()
            )
        })
        .collect();
    (
        sys.sim.now(),
        sys.sim.events_processed(),
        sys.sim.dropped_messages(),
        records,
        meters,
    )
}

/// Acceptance gate: the default single-partition uniform-priority config
/// gives same-seed bit-identical DES outcomes to the policy-unaware
/// builder, across 1/2/4/8 shards.
#[test]
fn des_default_policy_builder_is_bit_identical_across_shards() {
    let baseline = des_fingerprint(&run_des(1, false));
    assert_eq!(baseline.3.len(), 12, "jobs lost in the baseline run");
    for shards in [1usize, 2, 4, 8] {
        let with_policies = des_fingerprint(&run_des(shards, true));
        assert_eq!(
            with_policies, baseline,
            "{shards}-shard run with explicit default policies diverged"
        );
        let without = des_fingerprint(&run_des(shards, false));
        assert_eq!(
            without, baseline,
            "{shards}-shard policy-unaware run diverged"
        );
    }
}

/// Multifactor smoke: a prioritized, fair-share-charged run records
/// `PriorityRanked` decisions whose per-factor contributions sum exactly
/// to the composed priority — the invariant `eslurm why-job` prints from.
#[test]
fn multifactor_factors_sum_to_priority() {
    let trace = TraceConfig::multi_tenant(500, 42).with_users(200);
    let jobs = trace.generate();
    let mut policy = PredictiveLimit::new(EstimatorConfig::default());
    let log = DecisionLog::unbounded();
    let cfg = BackfillConfig {
        algo: SchedAlgo::Easy,
        audit: log.clone(),
        policies: SchedPolicies::default()
            .with_priority(MultifactorPriority::slurm_default())
            .with_fairshare(FairShareLedger::new(SimSpan::from_hours(24), 48)),
        ..BackfillConfig::new(128)
    };
    let report = simulate(&jobs, &mut policy, &cfg);
    assert!(report.completed > 0);

    let mut ranked = 0usize;
    for r in log.records() {
        if let Decision::PriorityRanked {
            priority_milli,
            factors,
            ..
        } = &r.decision
        {
            ranked += 1;
            assert!(!factors.is_empty(), "ranked decision with no factors");
            let sum: i64 = factors.iter().map(|(_, c)| c).sum();
            assert_eq!(
                sum, *priority_milli,
                "job {}: factor contributions do not sum to the priority",
                r.job
            );
            let names: Vec<&str> = factors.iter().map(|(n, _)| *n).collect();
            assert!(names.contains(&"fair-share"), "missing fair-share factor");
            assert!(names.contains(&"age"), "missing age factor");
            assert!(names.contains(&"size"), "missing size factor");
        }
    }
    assert!(
        ranked > 0,
        "multifactor run produced no PriorityRanked records"
    );
}

/// One (user, cores, busy-ms) completion charge.
fn charge_strategy() -> impl Strategy<Value = (u32, u64, u64)> {
    (0u32..40, 1u64..2000, 1u64..100_000_000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fair-share decay is order-independent for same-virtual-time
    /// completions: charging the same set in any permutation leaves every
    /// per-user usage, per-user factor, and the cluster total bitwise
    /// identical — the property that makes the sharded DES's
    /// drain-order-agnostic completion delivery safe to account from.
    #[test]
    fn fairshare_same_time_charges_commute_bitwise(
        charges in prop::collection::vec(charge_strategy(), 1..40),
        order in prop::collection::vec(0usize..1usize << 16, 1..40),
        now_s in 0u64..10_000_000,
        half_life_h in 1u64..10_000,
        banks in 0u32..64,
    ) {
        let now = SimTime::from_secs(now_s);
        let half_life = SimSpan::from_hours(half_life_h);

        let forward = FairShareLedger::new(half_life, banks);
        for &(u, c, ms) in &charges {
            forward.charge(u, c, SimSpan::from_millis(ms), now);
        }

        // An arbitrary permutation of the same charge set.
        let mut shuffled: Vec<usize> = (0..charges.len()).collect();
        for (i, &r) in order.iter().take(charges.len()).enumerate() {
            shuffled.swap(i, r % charges.len());
        }
        let permuted = FairShareLedger::new(half_life, banks);
        for &i in &shuffled {
            let (u, c, ms) = charges[i];
            permuted.charge(u, c, SimSpan::from_millis(ms), now);
        }

        // Read at several horizons so decay epochs are exercised too.
        for later_s in [0u64, 1, 3600, 86_400 * 30] {
            let at = SimTime::from_secs(now_s + later_s);
            prop_assert_eq!(
                forward.total_usage(at).to_bits(),
                permuted.total_usage(at).to_bits(),
                "total usage diverged at +{}s", later_s
            );
            for &(u, _, _) in &charges {
                prop_assert_eq!(
                    forward.usage(u, at).to_bits(),
                    permuted.usage(u, at).to_bits(),
                    "user {} usage diverged at +{}s", u, later_s
                );
                prop_assert_eq!(
                    forward.factor(u, at).to_bits(),
                    permuted.factor(u, at).to_bits(),
                    "user {} factor diverged at +{}s", u, later_s
                );
            }
        }
    }
}
