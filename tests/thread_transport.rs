//! Transport-independence validation: the same daemon actors that drive
//! the 20K-node discrete-event experiments run here on real OS threads
//! with crossbeam channels, under genuine concurrency, and must reach the
//! same protocol outcomes.

use eslurm_suite::emu::{NodeId, ThreadCluster};
use eslurm_suite::eslurm::{EslurmConfig, EslurmNode, EslurmSystemBuilder, SatelliteDaemon};
use eslurm_suite::rm::{
    CentralizedMaster, CtlKind, NodeSlice, RmMsg, RmNode, RmProfile, SlaveConfig, SlaveDaemon,
    SlaveHeartbeat,
};
use eslurm_suite::simclock::{SimSpan, SimTime};
use std::time::Duration;

fn quiet_slave() -> SlaveDaemon {
    SlaveDaemon::new(SlaveConfig {
        heartbeat: SlaveHeartbeat::None,
        ..Default::default()
    })
}

#[test]
fn centralized_job_lifecycle_on_threads() {
    let n = 32;
    let mut actors = vec![RmNode::Master(CentralizedMaster::new(
        RmProfile::slurm(),
        (1..=n).collect(),
    ))];
    for _ in 0..n {
        actors.push(RmNode::Slave(quiet_slave()));
    }
    let cluster = ThreadCluster::start(actors, 77);
    cluster.inject(
        NodeId::MASTER,
        NodeId::MASTER,
        RmMsg::SubmitJob {
            job: 7,
            nodes: NodeSlice::new((1..=n).collect()),
            runtime_us: 50_000, // 50 ms of "computation"
        },
    );
    std::thread::sleep(Duration::from_millis(600));
    let done = cluster.shutdown();
    let RmNode::Master(master) = &done[0].0 else {
        panic!()
    };
    assert_eq!(master.records.len(), 1, "job did not complete on threads");
    let r = master.records[0];
    assert_eq!(r.nodes, n);
    // Every slave executed launch + terminate exactly once.
    for (i, (node, _)) in done.iter().enumerate().skip(1) {
        let RmNode::Slave(s) = node else { panic!() };
        assert_eq!(s.ctl_handled, 2, "slave {i}");
    }
}

#[test]
fn satellite_relay_on_threads_matches_des_outcome() {
    let n_slaves = 60usize;
    let cfg = EslurmConfig {
        eq1_width: 64,
        relay_width: 4,
        ..Default::default()
    };

    // --- Thread transport: master log at node 0, satellite at 1.
    struct Log(Vec<RmMsg>);
    impl eslurm_suite::emu::Actor<RmMsg> for Log {
        fn on_message(
            &mut self,
            _: &mut dyn eslurm_suite::emu::Context<RmMsg>,
            _: NodeId,
            msg: RmMsg,
        ) {
            self.0.push(msg);
        }
    }
    enum Node {
        Log(Log),
        Sat(SatelliteDaemon),
        Slave(SlaveDaemon),
    }
    impl eslurm_suite::emu::Actor<RmMsg> for Node {
        fn on_start(&mut self, ctx: &mut dyn eslurm_suite::emu::Context<RmMsg>) {
            match self {
                Node::Log(_) => {}
                Node::Sat(s) => s.on_start(ctx),
                Node::Slave(s) => s.on_start(ctx),
            }
        }
        fn on_message(
            &mut self,
            ctx: &mut dyn eslurm_suite::emu::Context<RmMsg>,
            from: NodeId,
            msg: RmMsg,
        ) {
            match self {
                Node::Log(l) => l.on_message(ctx, from, msg),
                Node::Sat(s) => s.on_message(ctx, from, msg),
                Node::Slave(s) => s.on_message(ctx, from, msg),
            }
        }
        fn on_timer(&mut self, ctx: &mut dyn eslurm_suite::emu::Context<RmMsg>, token: u64) {
            match self {
                Node::Log(_) => {}
                Node::Sat(s) => s.on_timer(ctx, token),
                Node::Slave(s) => s.on_timer(ctx, token),
            }
        }
    }

    let mut actors = vec![
        Node::Log(Log(Vec::new())),
        Node::Sat(SatelliteDaemon::new(cfg.clone(), None)),
    ];
    for _ in 0..n_slaves {
        actors.push(Node::Slave(quiet_slave()));
    }
    let cluster = ThreadCluster::start(actors, 3);
    let list: Vec<u32> = (2..2 + n_slaves as u32).collect();
    cluster.inject(
        NodeId::MASTER,
        NodeId(1),
        RmMsg::BcastTask {
            task: 9,
            job: 4,
            kind: CtlKind::Launch,
            list: NodeSlice::new(list),
            width: 4,
        },
    );
    std::thread::sleep(Duration::from_millis(500));
    let done = cluster.shutdown();
    let Node::Log(log) = &done[0].0 else { panic!() };
    let thread_outcome: Vec<&RmMsg> = log
        .0
        .iter()
        .filter(|m| matches!(m, RmMsg::BcastDone { .. }))
        .collect();
    assert_eq!(thread_outcome.len(), 1, "satellite never reported");
    let RmMsg::BcastDone {
        reached: thread_reached,
        ok: true,
        ..
    } = thread_outcome[0]
    else {
        panic!("unexpected report {:?}", thread_outcome[0]);
    };

    // --- DES transport: the full system wiring, same satellite logic.
    let mut sys = EslurmSystemBuilder::new(
        EslurmConfig {
            n_satellites: 1,
            ..cfg
        },
        n_slaves,
        3,
    )
    .build();
    sys.submit(
        SimTime::from_secs(1),
        4,
        &(0..n_slaves).collect::<Vec<_>>(),
        SimSpan::from_secs(1),
    );
    sys.sim.run_until(SimTime::from_secs(30));
    assert_eq!(sys.master().records.len(), 1);

    // Same protocol outcome: every targeted node reached on both
    // transports.
    assert_eq!(*thread_reached, n_slaves as u32);
    let des_reached: u64 = (0..n_slaves)
        .map(|i| {
            let node = sys.slave_id(i);
            match sys.sim.actor(NodeId(node)) {
                EslurmNode::Slave(s) => s.ctl_handled,
                _ => 0,
            }
        })
        .sum();
    // Launch + terminate on every node via the DES.
    assert_eq!(des_reached, 2 * n_slaves as u64);
}

#[test]
fn thread_transport_survives_node_failure() {
    let n = 20;
    let mut actors = vec![RmNode::Master(CentralizedMaster::new(
        RmProfile::slurm(),
        (1..=n).collect(),
    ))];
    for _ in 0..n {
        actors.push(RmNode::Slave(quiet_slave()));
    }
    let cluster = ThreadCluster::start(actors, 13);
    // Node 5 is down before the launch goes out.
    cluster.set_up(NodeId(5), false);
    cluster.inject(
        NodeId::MASTER,
        NodeId::MASTER,
        RmMsg::SubmitJob {
            job: 1,
            nodes: NodeSlice::new((1..=n).collect()),
            runtime_us: 30_000,
        },
    );
    // Wait past the slave ack timeouts (depth-scaled, ~12 s would be the
    // DES value; on threads the same spans elapse in real time, so use a
    // small tree and short runtimes — the relay depth here is 2 levels).
    std::thread::sleep(Duration::from_millis(300));
    let meter = cluster.meter(NodeId::MASTER);
    // The master received at least the partial launch acks.
    let (_, received) = meter.msg_counts();
    assert!(received >= 1, "master heard nothing after a node failure");
    cluster.shutdown();
}
