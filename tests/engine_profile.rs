//! The wall-clock engine profiler's non-perturbation guarantee, end to
//! end: the same fixed-seed ESlurm scenario as `sharded_des.rs` produces
//! **bit-identical outcomes** and **byte-identical virtual-time exports**
//! (Chrome trace, event JSONL, metrics CSV) with the profiler on or off,
//! for every shard count — and the profile itself satisfies its own
//! accounting invariants (phase buckets never exceed measured wall time,
//! per-shard event counts sum to the engine's total).

use eslurm_suite::emu::{FaultPlan, NodeId, Outage};
use eslurm_suite::eslurm::{EslurmConfig, EslurmSystem, EslurmSystemBuilder};
use eslurm_suite::obs::{export, EngineMode, EngineProfiler, Recorder, Sampler};
use eslurm_suite::simclock::{SimSpan, SimTime};

fn cfg(m: usize) -> EslurmConfig {
    EslurmConfig {
        n_satellites: m,
        eq1_width: 48,
        relay_width: 8,
        hb_sweep_interval: SimSpan::from_secs(60),
        sat_hb_interval: SimSpan::from_secs(5),
        ..Default::default()
    }
}

/// The `sharded_des.rs` scenario — 3 satellites, 180 compute nodes, two
/// mid-run outages, 12 jobs, run to t=600s — with an engine profiler
/// threaded through the builder.
fn run(shards: usize, obs: Recorder, sampler: Sampler, engine: EngineProfiler) -> EslurmSystem {
    let m = 3;
    let n_slaves = 180;
    let total = 1 + m + n_slaves;
    let plan = FaultPlan::from_outages(
        total,
        vec![
            Outage {
                node: NodeId((1 + m + 17) as u32),
                down_at: SimTime::from_secs(90),
                up_at: SimTime::from_secs(400),
            },
            Outage {
                node: NodeId((1 + m + 101) as u32),
                down_at: SimTime::from_secs(150),
                up_at: SimTime::from_secs(2000),
            },
        ],
    );
    let mut sys = EslurmSystemBuilder::new(cfg(m), n_slaves, 33)
        .faults(plan)
        .obs(obs)
        .sampler(sampler)
        .shards(shards)
        .engine_profile(engine)
        .build();
    for j in 0..12u64 {
        let start = (j as usize * 13) % (n_slaves - 48);
        sys.submit(
            SimTime::from_secs(10 + j * 25),
            j,
            &(start..start + 40).collect::<Vec<_>>(),
            SimSpan::from_secs(20 + (j % 4) * 15),
        );
    }
    sys.sim.run_until(SimTime::from_secs(600));
    sys
}

fn outcome_fingerprint(sys: &EslurmSystem) -> (SimTime, u64, u64, Vec<String>, Vec<String>) {
    let records: Vec<String> = sys
        .master()
        .records
        .iter()
        .map(|r| format!("{:?}", r))
        .collect();
    let meters: Vec<String> = (0..1 + sys.n_satellites + sys.n_slaves)
        .map(|i| {
            let m = sys.sim.meter(NodeId(i as u32));
            format!(
                "{:?}|{:?}|{:?}|{:?}|{:?}",
                m.cpu_time(),
                m.msg_counts(),
                m.peak_sockets(),
                m.sockets(),
                m.peak_mem()
            )
        })
        .collect();
    (
        sys.sim.now(),
        sys.sim.events_processed(),
        sys.sim.dropped_messages(),
        records,
        meters,
    )
}

/// Profiling on vs. off changes nothing the simulation can observe: same
/// outcomes and a byte-identical sampler CSV, at every shard count.
#[test]
fn profiled_runs_are_bit_identical_to_unprofiled() {
    for shards in [1usize, 2, 4, 8] {
        let make = |engine: EngineProfiler| {
            let s = Sampler::every_until(SimSpan::from_secs(1), SimTime::from_secs(300));
            let sys = run(shards, Recorder::metrics_only(), s.clone(), engine);
            (outcome_fingerprint(&sys), s.to_csv())
        };
        let (plain_fp, plain_csv) = make(EngineProfiler::disabled());
        let profiler = EngineProfiler::enabled();
        let (prof_fp, prof_csv) = make(profiler.clone());
        assert_eq!(
            prof_fp, plain_fp,
            "{shards}-shard outcomes changed under profiling"
        );
        assert_eq!(
            prof_csv, plain_csv,
            "{shards}-shard sampler CSV changed under profiling"
        );
        assert!(
            profiler.report().is_some(),
            "{shards}-shard profiler produced no report"
        );
    }
}

/// The virtual-time trace exports (Chrome JSON without the engine track,
/// event JSONL) are byte-identical with the profiler armed — the
/// wall-clock domain cannot leak into them.
#[test]
fn profiled_trace_exports_are_byte_identical() {
    let plain_rec = Recorder::full();
    let _ = run(
        1,
        plain_rec.clone(),
        Sampler::disabled(),
        EngineProfiler::disabled(),
    );
    let plain_chrome = export::to_chrome_trace(&plain_rec.events());
    let plain_jsonl = export::to_jsonl(&plain_rec.events());
    assert!(plain_rec.events().len() > 1000, "trace suspiciously small");

    for shards in [1usize, 4] {
        let rec = Recorder::full();
        let profiler = EngineProfiler::enabled();
        let sys = run(shards, rec.clone(), Sampler::disabled(), profiler.clone());
        assert!(
            !sys.sim.parallel_enabled(),
            "full tracing must fall back to the merged engine"
        );
        assert_eq!(
            export::to_chrome_trace(&rec.events()),
            plain_chrome,
            "{shards}-shard profiled Chrome trace differs"
        );
        assert_eq!(
            export::to_jsonl(&rec.events()),
            plain_jsonl,
            "{shards}-shard profiled event JSONL differs"
        );
        // The combined export only *adds* the pid-2 engine track; the
        // virtual-time lanes stay untouched inside it.
        let combined = export::to_chrome_trace_full(&rec.events(), &[], &[], &profiler.spans());
        assert!(
            combined.contains("engine (wall-clock)"),
            "combined export is missing the engine track"
        );
    }
}

/// The profile's own accounting: phase buckets are disjoint sub-intervals
/// of measured wall time, shard event counts sum to the engine total, and
/// the parallel run reports windows.
#[test]
fn profiler_accounting_invariants_hold() {
    // Merged engine (1 shard).
    let profiler = EngineProfiler::enabled();
    let sys = run(
        1,
        Recorder::disabled(),
        Sampler::disabled(),
        profiler.clone(),
    );
    let report = profiler.report().expect("profiler attached");
    assert_eq!(report.mode, EngineMode::Merged);
    assert_eq!(report.shards.len(), 1);
    assert_eq!(report.total_events(), sys.sim.events_processed());
    for s in &report.shards {
        assert!(
            s.accounted_ns() <= s.wall_ns,
            "shard {}: accounted {} > wall {}",
            s.shard,
            s.accounted_ns(),
            s.wall_ns
        );
    }
    assert_eq!(report.sync_fraction(), 0.0, "merged run has no sync cost");
    assert_eq!(report.total_windows(), 0, "merged run has no windows");

    // Parallel workers (4 shards).
    let profiler = EngineProfiler::enabled();
    let sys = run(
        4,
        Recorder::disabled(),
        Sampler::disabled(),
        profiler.clone(),
    );
    assert!(sys.sim.parallel_enabled());
    let report = profiler.report().expect("profiler attached");
    assert_eq!(report.mode, EngineMode::Workers);
    assert_eq!(report.shards.len(), 4);
    assert_eq!(
        report.total_events(),
        sys.sim.events_processed(),
        "per-shard event counts must sum to the engine total"
    );
    for s in &report.shards {
        assert!(
            s.accounted_ns() <= s.wall_ns,
            "shard {}: accounted {} > wall {}",
            s.shard,
            s.accounted_ns(),
            s.wall_ns
        );
    }
    assert!(
        report.total_windows() > 0,
        "parallel run must count windows"
    );
    let sf = report.sync_fraction();
    assert!((0.0..=1.0).contains(&sf), "sync fraction {sf} out of range");
    assert!(report.imbalance() >= 1.0);
    // Windows advance virtual time; the mean realized width can dip below
    // `min_hop` (segment-end windows are clamped) but never hit zero.
    for s in &report.shards {
        if s.windows > 0 {
            assert!(
                s.realized_lookahead_us() > 0.0,
                "shard {} windows advanced no virtual time",
                s.shard
            );
        }
    }
    // This scenario routes satellite traffic across shards.
    assert!(
        report.cross_shard_total() > 0,
        "no cross-shard traffic seen"
    );
}
