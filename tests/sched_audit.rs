//! The scheduler decision audit log, end to end: non-perturbation
//! (bit-identical outcomes with auditing on/off, byte-identical logs for
//! the same seed), timeline completeness, the kill→resubmit estimate
//! hand-off, and reconciliation of the audit accuracy numbers against
//! `estimate::eval`'s percentile rule.

use eslurm_suite::eslurm::PredictiveLimit;
use eslurm_suite::estimate::{signed_error_percentiles, EstimatorConfig};
use eslurm_suite::obs::audit::{
    AuditReport, Decision, DecisionLog, DecisionRecord, EstSource, SkipReason,
};
use eslurm_suite::sched::prelude::{simulate, BackfillConfig, SchedAlgo, ScheduleReport};
use eslurm_suite::workload::TraceConfig;

/// The pinned audit scenario: the same fixed-seed workload the CLI's
/// `sched-report` defaults to, chosen because it exercises every decision
/// variant (backfills, both skip reasons, kills, resubmissions).
fn audited_run(audit: DecisionLog) -> ScheduleReport {
    let jobs = TraceConfig::small(400, 42).generate();
    let mut policy = PredictiveLimit::new(EstimatorConfig::default());
    let cfg = BackfillConfig {
        algo: SchedAlgo::Easy,
        audit,
        ..BackfillConfig::new(64)
    };
    simulate(&jobs, &mut policy, &cfg)
}

fn assert_reports_identical(a: &ScheduleReport, b: &ScheduleReport) {
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.killed, b.killed);
    assert_eq!(a.abandoned, b.abandoned);
    assert_eq!(
        a.occupied_node_secs.to_bits(),
        b.occupied_node_secs.to_bits()
    );
    assert_eq!(a.useful_node_secs.to_bits(), b.useful_node_secs.to_bits());
    assert_eq!(a.total_wait, b.total_wait);
    assert_eq!(a.total_slowdown.to_bits(), b.total_slowdown.to_bits());
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.nodes, b.nodes);
    assert_eq!(a.per_user, b.per_user);
}

#[test]
fn auditing_does_not_perturb_the_simulation() {
    let plain = audited_run(DecisionLog::disabled());
    let log = DecisionLog::unbounded();
    let audited = audited_run(log.clone());
    assert_reports_identical(&plain, &audited);
    assert!(!log.is_empty(), "enabled audit log stayed empty");
}

#[test]
fn same_seed_produces_byte_identical_logs() {
    let a = DecisionLog::unbounded();
    let b = DecisionLog::unbounded();
    audited_run(a.clone());
    audited_run(b.clone());
    let ja = a.to_jsonl();
    assert_eq!(ja, b.to_jsonl());
    assert!(!ja.is_empty());
    // Every line is one decision object with the mandatory fields.
    for line in ja.lines() {
        assert!(line.starts_with("{\"t_us\":"), "bad line {line}");
        assert!(line.contains("\"decision\":"), "bad line {line}");
        assert!(line.contains("\"est_us\":"), "bad line {line}");
        assert!(line.contains("\"source\":"), "bad line {line}");
    }
}

#[test]
fn conservative_auditing_is_also_non_perturbing() {
    let jobs = TraceConfig::small(300, 17).generate();
    let run = |audit: DecisionLog| {
        let mut policy = PredictiveLimit::new(EstimatorConfig::default());
        let cfg = BackfillConfig {
            algo: SchedAlgo::Conservative,
            audit,
            ..BackfillConfig::new(48)
        };
        simulate(&jobs, &mut policy, &cfg)
    };
    let log = DecisionLog::unbounded();
    assert_reports_identical(&run(DecisionLog::disabled()), &run(log.clone()));
    assert!(!log.is_empty());
}

#[test]
fn timelines_are_complete_and_ordered() {
    let log = DecisionLog::unbounded();
    let report = audited_run(log.clone());
    let records = log.records();

    let submitted: Vec<u64> = records
        .iter()
        .filter(|r| matches!(r.decision, Decision::Submitted))
        .map(|r| r.job)
        .collect();
    assert_eq!(submitted.len(), 400, "one Submitted per trace job");

    // Exercise coverage: this scenario hits every decision variant.
    let rep = AuditReport::from_records(&records);
    assert!(rep.backfills > 0, "no Backfilled decisions");
    assert!(rep.reservations > 0, "no ReservationPlaced decisions");
    assert!(rep.kills > 0, "no KilledAtLimit decisions");
    assert_eq!(rep.kills, report.killed);
    assert_eq!(rep.completions, report.completed);
    assert!(
        rep.skips.contains_key(SkipReason::NoFreeNodes.name()),
        "no no_free_nodes skips"
    );
    assert!(
        rep.skips.contains_key(SkipReason::WouldDelayHead.name()),
        "no would_delay_head skips"
    );

    for &job in &submitted {
        let tl: Vec<DecisionRecord> = records.iter().filter(|r| r.job == job).cloned().collect();
        // Virtual timestamps never go backwards within a job's timeline.
        assert!(
            tl.windows(2).all(|w| w[0].t_us <= w[1].t_us),
            "job {job} timeline out of order"
        );
        assert!(
            matches!(tl.first().map(|r| &r.decision), Some(Decision::Submitted)),
            "job {job} does not open with Submitted"
        );
        let started = tl
            .iter()
            .any(|r| matches!(r.decision, Decision::Started { .. }));
        let completed = tl
            .iter()
            .any(|r| matches!(r.decision, Decision::Completed { .. }));
        assert!(started, "job {job} never started");
        assert!(completed, "job {job} never completed");
        // A reservation always names at least one blocking running job —
        // that is the counterfactual `why-job` prints.
        for r in &tl {
            if let Decision::ReservationPlaced { blockers, .. } = &r.decision {
                assert!(
                    !blockers.is_empty(),
                    "job {job} reservation with no blockers"
                );
            }
        }
    }
}

#[test]
fn kill_resubmit_hands_the_estimate_off() {
    let log = DecisionLog::unbounded();
    audited_run(log.clone());
    let records = log.records();

    let mut kills = 0;
    let mut model_abandoned = 0;
    for (i, r) in records.iter().enumerate() {
        let Decision::KilledAtLimit {
            limit_us,
            actual_us,
        } = r.decision
        else {
            continue;
        };
        kills += 1;
        // The kill record carries the offending estimate, and the job
        // provably overran the limit derived from it.
        assert!(actual_us >= limit_us, "kill before the limit elapsed");
        assert!(r.est.value_us > 0);
        // The resubmission follows at the same instant, with a raised
        // limit; a model misprediction is abandoned for another source.
        let resub = records[i..]
            .iter()
            .find(|n| n.job == r.job && matches!(n.decision, Decision::Resubmitted { .. }))
            .unwrap_or_else(|| panic!("job {} killed but never resubmitted", r.job));
        let Decision::Resubmitted { new_limit_us, .. } = resub.decision else {
            unreachable!()
        };
        assert!(new_limit_us > limit_us, "resubmit limit did not grow");
        if r.est.source == EstSource::Model {
            assert_ne!(
                resub.est.source,
                EstSource::Model,
                "job {} kept a chronically underestimating model source",
                r.job
            );
            model_abandoned += 1;
        }
    }
    assert!(kills > 0, "scenario produced no kills");
    assert!(
        model_abandoned > 0,
        "scenario never exercised model-estimate abandonment"
    );
}

#[test]
fn report_accuracy_reconciles_with_estimate_eval_percentiles() {
    let log = DecisionLog::unbounded();
    audited_run(log.clone());
    let records = log.records();
    let rep = AuditReport::from_records(&records);

    // Rebuild each source's signed-error sample straight from the raw
    // decisions and push it through `estimate`'s percentile rule: the
    // audit report must agree exactly, so `eslurm sched-report` numbers
    // reconcile with `estimate::evaluate` on the same joined pairs.
    for (src, stats) in &rep.by_source {
        let mut errs: Vec<f64> = records
            .iter()
            .filter(|r| r.est.source.name() == *src)
            .filter_map(|r| match r.decision {
                Decision::Completed { est_error_us } => Some(est_error_us as f64 / 1e6),
                Decision::KilledAtLimit { actual_us, .. } => {
                    Some((r.est.value_us as f64 - actual_us as f64) / 1e6)
                }
                _ => None,
            })
            .collect();
        assert_eq!(stats.n, errs.len(), "sample size mismatch for {src}");
        let (p10, p50, p90) = signed_error_percentiles(&mut errs);
        assert_eq!(stats.p10_err_s.to_bits(), p10.to_bits(), "{src} p10");
        assert_eq!(stats.p50_err_s.to_bits(), p50.to_bits(), "{src} p50");
        assert_eq!(stats.p90_err_s.to_bits(), p90.to_bits(), "{src} p90");
        assert_eq!(
            stats.underestimates,
            errs.iter().filter(|&&e| e < 0.0).count(),
            "{src} underestimate count"
        );
    }
    // The model source joined predictions in this scenario.
    assert!(rep.by_source.get("model").map(|s| s.n).unwrap_or(0) > 0);
    // Every cluster row in the report came from model estimates only.
    let cluster_n: usize = rep.by_cluster.values().map(|s| s.n).sum();
    let model_n = rep.by_source.get("model").map(|s| s.n).unwrap_or(0);
    assert!(cluster_n <= model_n);
    assert!(cluster_n > 0, "no per-cluster accuracy rows");
}

#[test]
fn ring_cap_drops_oldest_but_keeps_counting() {
    let capped = DecisionLog::with_cap(64);
    audited_run(capped.clone());
    let full = DecisionLog::unbounded();
    audited_run(full.clone());
    assert_eq!(capped.len(), 64);
    assert!(capped.dropped() > 0);
    assert_eq!(capped.len() as u64 + capped.dropped(), full.len() as u64);
    // The capped ring holds exactly the newest suffix of the full log.
    let tail = &full.records()[full.len() - 64..];
    assert_eq!(eslurm_suite::obs::audit::to_jsonl(tail), capped.to_jsonl());
}
