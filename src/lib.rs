//! # eslurm-suite
//!
//! Umbrella crate for the ESlurm reproduction. It re-exports every
//! sub-crate under one roof so examples, integration tests, and downstream
//! users can depend on a single package:
//!
//! ```
//! use eslurm_suite::eslurm; // the core distributed RM
//! use eslurm_suite::workload; // synthetic trace generation
//! let _ = (
//!     std::any::type_name::<eslurm_suite::simclock::SimTime>(),
//! );
//! ```
//!
//! See `DESIGN.md` at the repository root for the system inventory and the
//! per-experiment index, and `EXPERIMENTS.md` for paper-vs-measured results.

pub use emu;
pub use eslurm;
pub use estimate;
pub use ml;
pub use monitoring;
pub use obs;
pub use rm;
pub use sched;
pub use simclock;
pub use topology;
pub use workload;

/// The observability handles most callers need, at the root: a
/// [`Recorder`] to pass into a builder's `.obs(..)`, and the id types it
/// is queried with.
pub use obs::{Counter, EventKind, Gauge, Hist, MetricsSummary, Recorder, TraceEvent};
